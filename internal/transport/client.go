package transport

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"netlock"
	"netlock/internal/obs"
	"netlock/internal/wire"
)

// Client acquires and releases locks against a NetLock switch over UDP,
// multiplexing any number of in-flight operations over one socket. Client
// is safe for concurrent use.
//
// Outgoing ops accumulate into batch frames (up to MaxBatch per datagram)
// and flush adaptively: immediately once every outstanding op is buffered
// (a lone synchronous caller never waits on the batcher), when the frame
// fills, and on the FlushInterval timer as a backstop. Completions arrive
// on the shared read loop, which matches them to in-flight ops by
// (lock, txn).
//
// Loss handling is end to end: unanswered acquires and un-acked releases
// are retransmitted every RetryInterval (the switch deduplicates), ctx
// deadlines are enforced by the same sweep, and grants that arrive for an
// op the caller abandoned are released automatically so the lock is not
// stranded until lease expiry.
//
// Against a replicated switch chain the client is given every member's
// address. Ops go to the current head; when the control plane reconfigures
// the chain, the promoted head announces the new epoch (wire.OpEpoch) and
// the client re-targets and immediately retransmits everything
// outstanding. If the head dies before any announcement arrives, the sweep
// rotates through the remaining addresses until one redirects or answers.
type Client struct {
	conn      PacketConn
	localIP   netip.Addr
	localPort uint16
	o         *obs.Stripe

	maxBatch   int
	flushEvery time.Duration
	retryEvery time.Duration
	onFailover func(epoch uint64, head string)

	mu sync.Mutex
	// targets are the known switch addresses; cur indexes the one ops are
	// sent to (the chain head, as far as this client knows).
	targets []netip.AddrPort
	cur     int
	// epoch is the newest chain epoch seen in an OpEpoch announcement;
	// older announcements are ignored.
	epoch uint64
	// lastRx is the last ingress instant; lastMove the last re-target. The
	// sweep rotates targets when ops are outstanding but the rack has gone
	// silent.
	lastRx   time.Time
	lastMove time.Time
	// failovers stages OnFailover notifications; the read loop delivers
	// them outside the lock.
	failovers []failoverEvent
	nextTxn   uint64
	acquires  map[pendKey]*AsyncAcquire
	releases  map[pendKey]*Grant
	// grants holds delivered, unreleased grants so a duplicated grant
	// datagram is distinguishable from a grant for an abandoned op.
	grants map[pendKey]*Grant
	bw     wire.BatchWriter
	bstore []byte
	// scratch encodes bare headers when MaxBatch == 1.
	scratch [wire.HeaderLen]byte

	acqPool   sync.Pool
	grantPool sync.Pool

	wg     sync.WaitGroup
	closed chan struct{}
}

// failoverEvent is one staged OnFailover notification.
type failoverEvent struct {
	epoch uint64
	head  string
}

// ClientConfig configures a Client.
type ClientConfig struct {
	// Switch is the switch's UDP address (single-switch shorthand for a
	// one-element Switches list).
	Switch string
	// Switches are the addresses of every member of a replicated switch
	// chain, head first. Ops go to the head; the remaining addresses are
	// failover candidates. Takes precedence over Switch when non-empty.
	Switches []string
	// OnFailover, if set, is invoked (from the client's internal
	// goroutines — it must not block) whenever the client re-targets to a
	// new head after an epoch announcement.
	OnFailover func(epoch uint64, head string)
	// Net is the socket factory; nil means real UDP.
	Net Network
	// MaxBatch caps ops per egress datagram. 0 means wire.MaxBatchOps;
	// 1 sends one bare header per datagram (the unbatched baseline).
	MaxBatch int
	// FlushInterval is the backstop flush timer for buffered ops.
	// Default 500µs. Most flushes happen adaptively before it fires.
	FlushInterval time.Duration
	// RetryInterval is the resend cadence for unanswered acquires and
	// un-acked releases. Default 200ms.
	RetryInterval time.Duration
	// Obs records frame/op counters and the egress batch-size histogram.
	Obs *obs.Stripe
}

// NewClient creates a client socket pointed at the switch, with default
// batching. See NewClientConfig to tune.
func NewClient(switchAddr string) (*Client, error) {
	return NewClientConfig(ClientConfig{Switch: switchAddr})
}

// NewClientConfig creates a client from an explicit configuration.
func NewClientConfig(cfg ClientConfig) (*Client, error) {
	addrs := cfg.Switches
	if len(addrs) == 0 {
		addrs = []string{cfg.Switch}
	}
	var targets []netip.AddrPort
	for _, a := range addrs {
		ap, err := resolveAddrPort(a)
		if err != nil {
			return nil, fmt.Errorf("transport: resolve switch addr: %w", err)
		}
		targets = append(targets, ap)
	}
	nw := cfg.Net
	if nw == nil {
		nw = UDP
	}
	conn, err := nw.Listen(net.JoinHostPort(targets[0].Addr().String(), "0"))
	if err != nil {
		return nil, fmt.Errorf("transport: client socket: %w", err)
	}
	maxBatch := cfg.MaxBatch
	if maxBatch <= 0 || maxBatch > wire.MaxBatchOps {
		maxBatch = wire.MaxBatchOps
	}
	if cfg.MaxBatch == 1 {
		maxBatch = 1
	}
	flush := cfg.FlushInterval
	if flush <= 0 {
		flush = 500 * time.Microsecond
	}
	retry := cfg.RetryInterval
	if retry <= 0 {
		retry = 200 * time.Millisecond
	}
	c := &Client{
		conn:       conn,
		targets:    targets,
		o:          cfg.Obs,
		maxBatch:   maxBatch,
		flushEvery: flush,
		retryEvery: retry,
		onFailover: cfg.OnFailover,
		lastRx:     time.Now(),
		acquires:   make(map[pendKey]*AsyncAcquire),
		releases:   make(map[pendKey]*Grant),
		grants:     make(map[pendKey]*Grant),
		closed:     make(chan struct{}),
	}
	c.acqPool.New = func() any { return &AsyncAcquire{ch: make(chan struct{}, 1)} }
	c.grantPool.New = func() any { return &Grant{ackCh: make(chan struct{}, 1)} }
	c.bw.Reset(nil)
	if ua, ok := conn.LocalAddr().(*net.UDPAddr); ok {
		if a, ok2 := netip.AddrFromSlice(ua.IP); ok2 {
			c.localIP = a.Unmap()
		}
		c.localPort = ua.AddrPort().Port()
	}
	// Transaction IDs identify a request end to end: grants for queued
	// requests are routed back by (lock, txn). Clients draw from disjoint
	// random ranges so concurrent clients cannot collide.
	c.nextTxn = rand.Uint64() >> 1
	c.wg.Add(1)
	go c.readLoop()
	c.wg.Add(1)
	go c.sweepLoop()
	if c.maxBatch > 1 {
		c.wg.Add(1)
		go c.flushLoop()
	}
	return c, nil
}

// Close stops the client; blocked Acquire and Wait calls fail with
// netlock.ErrClosed.
func (c *Client) Close() error {
	select {
	case <-c.closed:
		return nil
	default:
	}
	close(c.closed)
	err := c.conn.Close()
	c.wg.Wait()
	c.mu.Lock()
	var done []*AsyncAcquire
	for k, a := range c.acquires {
		delete(c.acquires, k)
		a.g = nil
		a.err = fmt.Errorf("transport: acquire lock %d: %w", k.lock, netlock.ErrClosed)
		done = append(done, a)
	}
	for k := range c.releases {
		delete(c.releases, k)
	}
	for k := range c.grants {
		delete(c.grants, k)
	}
	c.mu.Unlock()
	for _, a := range done {
		c.finishAcquire(a)
	}
	return err
}

// AsyncAcquire is one in-flight acquire. Exactly one completion consumer
// exists per handle: either the callback passed to AcquireFunc, or one
// Wait call. After Wait returns (or the callback fires) the handle is
// recycled and must not be touched again.
type AsyncAcquire struct {
	c        *Client
	key      pendKey
	hdr      wire.Header
	ch       chan struct{}
	cb       func(*Grant, error)
	g        *Grant
	err      error
	deadline time.Time // zero = none; enforced by the sweep
	lastSend time.Time // guarded by c.mu
}

// Txn returns the transaction ID identifying this acquire on the wire.
// Valid until the handle completes.
func (a *AsyncAcquire) Txn() uint64 { return a.key.txn }

// LockID returns the lock this acquire addresses.
func (a *AsyncAcquire) LockID() uint32 { return a.key.lock }

// Wait blocks until the acquire completes, ctx is done, or the client
// closes. It must be called exactly once per handle obtained from
// AcquireAsync. Abandoning a granted acquire (ctx won the race) releases
// the grant automatically.
func (a *AsyncAcquire) Wait(ctx context.Context) (*Grant, error) {
	c := a.c
	select {
	case <-a.ch:
		g, err := a.g, a.err
		c.recycleAcquire(a)
		return g, err
	case <-ctx.Done():
		return c.abandon(a, ctx.Err())
	case <-c.closed:
		return c.abandon(a, nil)
	}
}

// abandon resolves a Wait that lost the race to ctx or Close. cause is the
// ctx error, or nil for client close.
func (c *Client) abandon(a *AsyncAcquire, cause error) (*Grant, error) {
	lockID := a.key.lock
	c.mu.Lock()
	_, pending := c.acquires[a.key]
	if pending {
		delete(c.acquires, a.key)
	}
	c.mu.Unlock()
	if !pending {
		// Completed concurrently: the completion token is in flight.
		// Take it; if the op was granted, give the lock back.
		<-a.ch
		if a.g != nil {
			a.g.Release()
		}
	}
	c.recycleAcquire(a)
	switch {
	case cause == nil:
		return nil, fmt.Errorf("transport: acquire lock %d: %w", lockID, netlock.ErrClosed)
	case errors.Is(cause, context.DeadlineExceeded):
		return nil, fmt.Errorf("transport: acquire lock %d: %w (%w)", lockID, netlock.ErrTimeout, cause)
	default:
		return nil, fmt.Errorf("transport: acquire lock %d: %w", lockID, cause)
	}
}

// AcquireAsync submits an acquire and returns immediately with a handle;
// call Wait (exactly once) for the result. ctx's deadline, if any, bounds
// the acquire even if Wait is called later with a different context.
func (c *Client) AcquireAsync(ctx context.Context, lockID uint32, mode netlock.Mode, opts ...netlock.AcquireOption) (*AsyncAcquire, error) {
	return c.submit(ctx, lockID, mode, nil, opts)
}

// AcquireFunc submits an acquire whose completion invokes cb (from the
// client's internal goroutines — cb must not block) with the grant or
// error. Only ctx's deadline is honored for callback completions.
func (c *Client) AcquireFunc(ctx context.Context, lockID uint32, mode netlock.Mode, cb func(*Grant, error), opts ...netlock.AcquireOption) error {
	if cb == nil {
		return errors.New("transport: AcquireFunc requires a callback")
	}
	_, err := c.submit(ctx, lockID, mode, cb, opts)
	return err
}

// Acquire requests a lock and blocks until granted, the context is
// cancelled, or the client closes. Unanswered requests are retransmitted
// every RetryInterval. The option set (tenant, priority, lease) is shared
// with the embedded netlock.Manager, as are the failure sentinels: errors
// match netlock.ErrClosed, netlock.ErrQuotaExceeded,
// netlock.ErrQueueOverflow, and — when the context's deadline expired —
// netlock.ErrTimeout alongside context.DeadlineExceeded.
func (c *Client) Acquire(ctx context.Context, lockID uint32, mode netlock.Mode, opts ...netlock.AcquireOption) (*Grant, error) {
	a, err := c.AcquireAsync(ctx, lockID, mode, opts...)
	if err != nil {
		return nil, err
	}
	return a.Wait(ctx)
}

// AcquireTimeout requests a lock with a plain timeout.
//
// Deprecated: use Acquire with a context and the shared netlock option set;
// this shim will be removed after one release.
func (c *Client) AcquireTimeout(lockID uint32, mode wire.Mode, timeout time.Duration) (*Grant, error) {
	nm := netlock.Shared
	if mode == wire.Exclusive {
		nm = netlock.Exclusive
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return c.Acquire(ctx, lockID, nm)
}

func (c *Client) submit(ctx context.Context, lockID uint32, mode netlock.Mode, cb func(*Grant, error), opts []netlock.AcquireOption) (*AsyncAcquire, error) {
	o := netlock.ResolveAcquireOptions(opts...)
	wm := wire.Shared
	if mode == netlock.Exclusive {
		wm = wire.Exclusive
	}
	a := c.acqPool.Get().(*AsyncAcquire)
	a.c = c
	a.cb = cb
	a.g = nil
	a.err = nil
	a.deadline, _ = ctx.Deadline()
	a.lastSend = time.Now()
	c.mu.Lock()
	select {
	case <-c.closed:
		// Checked under c.mu so this submit cannot slip past Close's
		// drain of the acquire table.
		c.mu.Unlock()
		c.recycleAcquire(a)
		return nil, fmt.Errorf("transport: acquire lock %d: %w", lockID, netlock.ErrClosed)
	default:
	}
	c.nextTxn++
	a.key = pendKey{lockID, c.nextTxn}
	a.hdr = wire.Header{
		Op:         wire.OpAcquire,
		Mode:       wm,
		LockID:     lockID,
		TxnID:      a.key.txn,
		ClientIP:   c.localIP,
		ClientPort: c.localPort,
		TenantID:   o.Tenant,
		Priority:   o.Priority,
		LeaseNs:    int64(o.Lease),
	}
	c.acquires[a.key] = a
	c.enqueueOp(&a.hdr)
	c.maybeFlushLocked()
	c.mu.Unlock()
	return a, nil
}

// Grant states. A Grant is single-use: once Release or ReleaseWait has
// been called, the handle must not be touched again (it is recycled when
// the end-to-end ack lands).
const (
	grantFree uint32 = iota
	grantHeld
	grantReleasing // fire-and-forget; the read loop recycles on ack
	grantWaited    // a ReleaseWait consumer takes the ack
)

// Grant is a lock held through a Client.
type Grant struct {
	c        *Client
	key      pendKey
	hdr      wire.Header // acquire header; release/ack echo its fields
	state    atomic.Uint32
	ackCh    chan struct{}
	lastSend time.Time // guarded by c.mu
}

// LockID returns the granted lock.
func (g *Grant) LockID() uint32 { return g.key.lock }

// Txn returns the transaction ID the grant was issued under.
func (g *Grant) Txn() uint64 { return g.key.txn }

// Release releases the lock. It returns immediately; the client keeps
// retransmitting the release until the switch (or the owning lock server)
// acknowledges it, so the lock is not leaked if the first datagram drops.
func (g *Grant) Release() {
	if !g.state.CompareAndSwap(grantHeld, grantReleasing) {
		return
	}
	g.c.startRelease(g)
}

// ReleaseWait releases the lock and blocks until the release is
// acknowledged end to end, ctx is done, or the client closes. If ctx wins,
// the release keeps retransmitting in the background.
func (g *Grant) ReleaseWait(ctx context.Context) error {
	if !g.state.CompareAndSwap(grantHeld, grantWaited) {
		return nil // already released
	}
	c := g.c
	c.startRelease(g)
	select {
	case <-g.ackCh:
		c.recycleGrant(g)
		return nil
	case <-ctx.Done():
		// Hand ack consumption back to the read loop. If the ack raced
		// us and the token is already here, we still own the recycle.
		g.state.CompareAndSwap(grantWaited, grantReleasing)
		select {
		case <-g.ackCh:
			c.recycleGrant(g)
		default:
		}
		return ctx.Err()
	case <-c.closed:
		return fmt.Errorf("transport: release lock %d: %w", g.key.lock, netlock.ErrClosed)
	}
}

// startRelease moves g into the release-pending table and sends the first
// release datagram.
func (c *Client) startRelease(g *Grant) {
	h := g.hdr
	h.Op = wire.OpRelease
	c.mu.Lock()
	delete(c.grants, g.key)
	c.releases[g.key] = g
	g.lastSend = time.Now()
	c.enqueueOp(&h)
	c.maybeFlushLocked()
	c.mu.Unlock()
}

// autoRelease gives back a grant that arrived for an op this client no
// longer tracks (cancelled, timed out, or already fully released): it
// fabricates a releasing Grant so the normal retry/ack machinery applies.
// Caller holds c.mu.
func (c *Client) autoRelease(h *wire.Header, key pendKey) {
	g := c.grantPool.Get().(*Grant)
	g.c = c
	g.key = key
	g.hdr = *h
	g.hdr.Op = wire.OpRelease
	g.hdr.Flags = 0 // grant flag bits must not leak into the release path
	g.state.Store(grantReleasing)
	g.lastSend = time.Now()
	c.releases[key] = g
	rel := g.hdr
	c.enqueueOp(&rel)
}

// enqueueOp appends one op to the outgoing frame (or writes it straight
// out when MaxBatch == 1). Caller holds c.mu.
func (c *Client) enqueueOp(h *wire.Header) {
	if c.maxBatch <= 1 {
		buf := h.AppendTo(c.scratch[:0])
		c.conn.WriteToUDPAddrPort(buf, c.dest())
		c.o.Inc(obs.CtrFramesOut)
		c.o.Observe(obs.StageEgressBatch, 1)
		return
	}
	if c.bw.Count() >= c.maxBatch || !c.bw.Append(h) {
		c.flushLocked()
		c.bw.Append(h)
	}
}

// maybeFlushLocked applies the adaptive flush rule: send the open frame
// once it is full, or once every outstanding op is sitting in it (nothing
// is left in flight whose completion could grow the batch). Caller holds
// c.mu.
func (c *Client) maybeFlushLocked() {
	n := c.bw.Count()
	if n == 0 {
		return
	}
	if n >= c.maxBatch || n >= len(c.acquires)+len(c.releases) {
		c.flushLocked()
	}
}

// flushLocked writes the open frame, if any. Caller holds c.mu.
func (c *Client) flushLocked() {
	n := c.bw.Count()
	frame := c.bw.Frame()
	if frame == nil {
		return
	}
	c.conn.WriteToUDPAddrPort(frame, c.dest())
	c.o.Inc(obs.CtrFramesOut)
	c.o.Observe(obs.StageEgressBatch, int64(n))
	c.bstore = frame[:0]
	c.bw.Reset(c.bstore)
}

// flushLoop is the FlushInterval backstop for ops the adaptive rule left
// buffered.
func (c *Client) flushLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.flushEvery)
	defer t.Stop()
	for {
		select {
		case <-c.closed:
			return
		case <-t.C:
			c.mu.Lock()
			c.flushLocked()
			c.mu.Unlock()
		}
	}
}

// dest is the current head's address. Caller holds c.mu.
func (c *Client) dest() netip.AddrPort { return c.targets[c.cur] }

// adoptEpoch processes one OpEpoch announcement: TxnID carries the chain
// epoch, the client address fields the head. Newer epochs (and same-epoch
// redirects from non-head members) re-target the client and trigger an
// immediate retransmit of everything outstanding. Caller holds c.mu.
func (c *Client) adoptEpoch(h *wire.Header) {
	if h.TxnID < c.epoch {
		return // stale announcement from a demoted member
	}
	head := netip.AddrPortFrom(h.ClientIP.Unmap(), h.ClientPort)
	if !head.IsValid() {
		return
	}
	moved := c.retarget(head)
	newer := h.TxnID > c.epoch
	c.epoch = h.TxnID
	if !moved && !newer {
		return
	}
	if moved {
		c.retransmitAllLocked()
	}
	if c.onFailover != nil {
		c.failovers = append(c.failovers, failoverEvent{epoch: c.epoch, head: head.String()})
	}
}

// retarget points the client at head, learning the address if it was not
// in the configured set, and reports whether the destination changed.
// Caller holds c.mu.
func (c *Client) retarget(head netip.AddrPort) bool {
	for i, t := range c.targets {
		if t == head {
			if i == c.cur {
				return false
			}
			c.cur = i
			c.lastMove = time.Now()
			return true
		}
	}
	c.targets = append(c.targets, head)
	c.cur = len(c.targets) - 1
	c.lastMove = time.Now()
	return true
}

// retransmitAllLocked re-sends every outstanding acquire and release to
// the current destination, resetting their retry clocks. Caller holds
// c.mu.
func (c *Client) retransmitAllLocked() {
	now := time.Now()
	for _, a := range c.acquires {
		a.lastSend = now
		c.enqueueOp(&a.hdr)
	}
	for _, g := range c.releases {
		g.lastSend = now
		h := g.hdr
		h.Op = wire.OpRelease
		c.enqueueOp(&h)
	}
	c.flushLocked()
}

// rotateIfSilent is the sweep's failover backstop for the window between a
// head failing and its successor's epoch announcement (which the dead head
// obviously cannot deliver): with ops outstanding and nothing received for
// two retry intervals, try the next known switch address. A live non-head
// member answers with a redirect; a live head answers the ops themselves.
// Caller holds c.mu.
func (c *Client) rotateIfSilent(now time.Time) {
	if len(c.targets) < 2 || len(c.acquires)+len(c.releases) == 0 {
		return
	}
	quiet := 2 * c.retryEvery
	if now.Sub(c.lastRx) < quiet || now.Sub(c.lastMove) < quiet {
		return
	}
	c.cur = (c.cur + 1) % len(c.targets)
	c.lastMove = now
	c.retransmitAllLocked()
}

// sweepLoop enforces acquire deadlines and retransmits unanswered
// acquires and un-acked releases every RetryInterval.
func (c *Client) sweepLoop() {
	defer c.wg.Done()
	tick := c.retryEvery / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	var expired []*AsyncAcquire
	for {
		select {
		case <-c.closed:
			return
		case <-t.C:
		}
		now := time.Now()
		expired = expired[:0]
		c.mu.Lock()
		for key, a := range c.acquires {
			if !a.deadline.IsZero() && now.After(a.deadline) {
				delete(c.acquires, key)
				a.g = nil
				a.err = fmt.Errorf("transport: acquire lock %d: %w (%w)",
					key.lock, netlock.ErrTimeout, context.DeadlineExceeded)
				expired = append(expired, a)
				continue
			}
			if now.Sub(a.lastSend) >= c.retryEvery {
				a.lastSend = now
				c.enqueueOp(&a.hdr)
			}
		}
		for _, g := range c.releases {
			if now.Sub(g.lastSend) >= c.retryEvery {
				g.lastSend = now
				h := g.hdr
				h.Op = wire.OpRelease
				c.enqueueOp(&h)
			}
		}
		c.rotateIfSilent(now)
		c.flushLocked()
		c.mu.Unlock()
		for _, a := range expired {
			c.finishAcquire(a)
		}
	}
}

func (c *Client) readLoop() {
	defer c.wg.Done()
	buf := make([]byte, maxPacket)
	var h wire.Header
	var br wire.BatchReader
	var doneAcq []*AsyncAcquire
	var doneRel []*Grant
	for {
		n, _, err := c.conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			select {
			case <-c.closed:
				return
			default:
				continue
			}
		}
		data := buf[:n]
		doneAcq = doneAcq[:0]
		doneRel = doneRel[:0]
		c.mu.Lock()
		c.lastRx = time.Now()
		if wire.IsBatch(data) {
			if br.Reset(data) == nil {
				ops := 0
				for {
					ok, err2 := br.Next(&h)
					if err2 != nil || !ok {
						break
					}
					ops++
					doneAcq, doneRel = c.handleOp(&h, doneAcq, doneRel)
				}
				if ops > 0 {
					c.o.Inc(obs.CtrFramesIn)
					c.o.Add(obs.CtrOpsIn, uint64(ops))
				}
			}
		} else if h.DecodeFromBytes(data) == nil {
			c.o.Inc(obs.CtrFramesIn)
			c.o.Inc(obs.CtrOpsIn)
			doneAcq, doneRel = c.handleOp(&h, doneAcq, doneRel)
		}
		// Completions may have drained the in-flight set down to the
		// buffered ops; re-check the adaptive flush rule.
		c.maybeFlushLocked()
		var events []failoverEvent
		if len(c.failovers) > 0 {
			events = append(events, c.failovers...)
			c.failovers = c.failovers[:0]
		}
		c.mu.Unlock()
		// Deliver completions outside the lock: callbacks may submit new
		// ops (which take c.mu), and channel waiters resume immediately.
		for _, ev := range events {
			c.onFailover(ev.epoch, ev.head)
		}
		for _, a := range doneAcq {
			c.finishAcquire(a)
		}
		for _, g := range doneRel {
			c.finishRelease(g)
		}
	}
}

// handleOp matches one ingress op to its in-flight entry and stages the
// completion. Caller holds c.mu.
func (c *Client) handleOp(h *wire.Header, doneAcq []*AsyncAcquire, doneRel []*Grant) ([]*AsyncAcquire, []*Grant) {
	key := pendKey{h.LockID, h.TxnID}
	switch h.Op {
	case wire.OpGrant, wire.OpFetch:
		if a, ok := c.acquires[key]; ok {
			delete(c.acquires, key)
			g := c.grantPool.Get().(*Grant)
			g.c = c
			g.key = key
			g.hdr = a.hdr
			g.state.Store(grantHeld)
			c.grants[key] = g
			a.g = g
			a.err = nil
			return append(doneAcq, a), doneRel
		}
		if _, held := c.grants[key]; held {
			return doneAcq, doneRel // duplicated grant datagram
		}
		if _, rel := c.releases[key]; rel {
			return doneAcq, doneRel // duplicate; release already in flight
		}
		c.autoRelease(h, key)
	case wire.OpReject:
		if a, ok := c.acquires[key]; ok {
			if h.Flags&wire.FlagMoved != 0 {
				// The lock's owner moved mid-request (a rebalancer drain):
				// not a failure. Retry immediately through the switch, which
				// routes to the new owner once the flip completes; the
				// acquire's deadline still bounds the loop.
				a.lastSend = time.Now()
				c.enqueueOp(&a.hdr)
				return doneAcq, doneRel
			}
			delete(c.acquires, key)
			a.g = nil
			a.err = rejectErr(h, key.lock)
			return append(doneAcq, a), doneRel
		}
	case wire.OpReleaseAck:
		if g, ok := c.releases[key]; ok {
			delete(c.releases, key)
			return doneAcq, append(doneRel, g)
		}
	case wire.OpEpoch:
		c.adoptEpoch(h)
	}
	return doneAcq, doneRel
}

// finishAcquire delivers one staged acquire completion. Must be called
// without c.mu held.
func (c *Client) finishAcquire(a *AsyncAcquire) {
	if cb := a.cb; cb != nil {
		g, err := a.g, a.err
		c.recycleAcquire(a)
		cb(g, err)
		return
	}
	a.ch <- struct{}{}
}

// finishRelease resolves one acked release: hand the token to a
// ReleaseWait consumer, or recycle the grant directly. Must be called
// without c.mu held.
func (c *Client) finishRelease(g *Grant) {
	if g.state.Load() == grantWaited {
		select {
		case g.ackCh <- struct{}{}:
		default:
		}
		return
	}
	c.recycleGrant(g)
}

func (c *Client) recycleAcquire(a *AsyncAcquire) {
	select {
	case <-a.ch:
	default:
	}
	a.cb = nil
	a.g = nil
	a.err = nil
	a.deadline = time.Time{}
	c.acqPool.Put(a)
}

func (c *Client) recycleGrant(g *Grant) {
	select {
	case <-g.ackCh:
	default:
	}
	g.state.Store(grantFree)
	c.grantPool.Put(g)
}

func rejectErr(h *wire.Header, lockID uint32) error {
	if h.Flags&wire.FlagOverflow != 0 {
		return fmt.Errorf("transport: acquire lock %d: %w", lockID, netlock.ErrQueueOverflow)
	}
	return fmt.Errorf("transport: acquire lock %d: %w", lockID, netlock.ErrQuotaExceeded)
}
