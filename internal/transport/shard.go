package transport

import (
	"net/netip"

	"netlock/internal/wire"
)

// Multi-rack shard routing on the switch. In a fabric (internal/fabric)
// every rack's chain members hold the current wire.ShardMap plus this
// rack's index; the head filters client ingress through it:
//
//   - a request for a shard owned by another rack is answered with an
//     OpWrongRack bounce plus the full serialized map, so stale clients
//     adopt the newer epoch and re-route (the map's authoritative copy
//     lives in the network, NetChain style);
//   - a request for a shard the fabric controller has fenced (mid
//     re-home) is silently dropped — the client's retransmit sweep
//     re-sends it after the flip, when the bounce redirects it to the
//     destination rack.
//
// The map and fences are installed chain-wide (every member stores them)
// so a promoted head filters identically, but only head ingress consults
// them. Outside a fabric the map is nil and the filter is a no-op.

// SetShardMap installs the fabric shard map and this rack's index on this
// member. The encoded frame is cached so bouncing costs no allocation.
func (s *Switch) SetShardMap(m *wire.ShardMap, selfRack int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.smap = m.Clone()
	s.selfRack = selfRack
	s.smapFrame = s.smap.AppendTo(s.smapFrame[:0])
}

// ShardMapEpoch returns the epoch of the installed shard map (0 when none
// is installed).
func (s *Switch) ShardMapEpoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.smap == nil {
		return 0
	}
	return s.smap.Epoch
}

// SetShardFence fences or unfences one shard on this member: while fenced,
// head ingress drops client requests for the shard's locks (the re-home
// protocol moves the shard's live state rack-to-rack in the window).
func (s *Switch) SetShardFence(shard uint32, on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fenced == nil {
		s.fenced = make(map[uint32]bool)
	}
	if on {
		s.fenced[shard] = true
	} else {
		delete(s.fenced, shard)
	}
}

// shardFilter applies the shard map to one client op at head ingress.
// It reports true when the op was consumed (bounced to another rack or
// dropped by a fence). Caller holds s.mu.
func (s *Switch) shardFilter(h *wire.Header, from netip.AddrPort) bool {
	if s.smap == nil {
		return false
	}
	if h.Op != wire.OpAcquire && h.Op != wire.OpRelease {
		return false
	}
	sh := s.smap.ShardOf(h.LockID)
	if s.smap.RackAt(sh) != s.selfRack {
		s.bounceWrongRack(h, from)
		return true
	}
	if s.fenced[sh] {
		return true // mid re-home: drop; the retry lands after the flip
	}
	return false
}

// bounceWrongRack answers a mis-routed client op: an OpWrongRack echo
// (LeaseNs carries the map epoch) through the batched egress plus the
// cached map frame as its own datagram. Caller holds s.mu.
func (s *Switch) bounceWrongRack(h *wire.Header, from netip.AddrPort) {
	if !from.IsValid() {
		return
	}
	wr := *h
	wr.Op = wire.OpWrongRack
	wr.Flags = 0
	wr.LeaseNs = int64(s.smap.Epoch)
	s.eg.send(&wr, from)
	s.conn.WriteToUDPAddrPort(s.smapFrame, from)
}

// PendingReleases counts forwarded-but-unacked client releases for locks
// matching the predicate. The fabric controller polls it (on the head)
// after fencing a shard: with new releases fenced out, the count drains
// monotonically over the reliable in-rack fabric, and export only starts
// once no release is in flight toward a server.
func (s *Switch) PendingReleases(match func(uint32) bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for key := range s.relPending {
		if match(key.lock) {
			n++
		}
	}
	return n
}

// PurgeClientState drops the per-(lock, txn) client tables — pending
// acquires, cached grants, pending releases — for every lock matching the
// predicate, and tombstones the purged keys. Called on every chain member
// after a shard's lock state is exported to another rack: the entries
// describe state that now lives elsewhere, so answering retransmits from
// them (or re-sending their grants) would speak for a lock this rack no
// longer owns. The tombstones keep a chaos-delayed duplicate of a moved
// op from re-entering this rack before the map flip lands.
func (s *Switch) PurgeClientState(match func(uint32) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for key := range s.pending {
		if match(key.lock) {
			delete(s.pending, key)
			s.markDone(key)
		}
	}
	for key := range s.granted {
		if match(key.lock) {
			delete(s.granted, key)
			s.markDone(key)
		}
	}
	for key := range s.relPending {
		if match(key.lock) {
			delete(s.relPending, key)
			s.markDone(key)
		}
	}
}

// ImportClientState seeds the client tables for one queue entry imported
// from another rack, on this member. A granted entry enters the grant
// cache under a reconstructed grant header — acquire retransmits are
// answered from it, the release path runs the data plane exactly once,
// and the sweep re-sends the grant until its release — and a waiter
// enters the pending table so its eventual grant is delivered. hdr is the
// original acquire header carried by the migration (client address
// stamped); leaseNs is the expiry already rebased to this rack's clock.
// Installed on every chain member before the map flip exposes the shard,
// so the tables are replicated like any sequenced op's effects.
func (s *Switch) ImportClientState(granted bool, hdr *wire.Header, leaseNs int64) {
	addr := clientAddrOf(hdr)
	key := pendKey{hdr.LockID, hdr.TxnID}
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.done, key)
	if granted {
		gh := *hdr
		gh.Op = wire.OpGrant
		gh.Flags = 0
		gh.LeaseNs = leaseNs
		delete(s.pending, key)
		s.granted[key] = grantEntry{hdr: gh, addr: addr, sentNs: s.now()}
		return
	}
	p := pendingReq{addr: addr}
	if s.o.Enabled() {
		p.sentNs = s.now()
	}
	s.pending[key] = p
}
