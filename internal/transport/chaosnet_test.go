package transport

import (
	"net/netip"
	"testing"
	"time"
)

// Undelayed chaos delivery is synchronous, so after a Write the datagram
// (if it survived) is already queued in the destination inbox — the tests
// below assert on inbox occupancy directly instead of racing reads.

func chaosPair(t *testing.T, cn *ChaosNet) (a, b *chaosConn, bAddr netip.AddrPort) {
	t.Helper()
	pa, err := cn.Listen("10.99.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pb, err := cn.Listen("10.99.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pa.Close(); pb.Close() })
	a, b = pa.(*chaosConn), pb.(*chaosConn)
	return a, b, b.local
}

func drain(c *chaosConn) int {
	n := 0
	for {
		select {
		case <-c.inbox:
			n++
		default:
			return n
		}
	}
}

// TestChaosNetDropAll: an edge link with Drop=1 delivers nothing, while a
// reliable<->reliable link under the same config delivers everything.
func TestChaosNetDropAll(t *testing.T) {
	cn := NewChaosNet(ChaosConfig{Seed: 1, Drop: 1.0})
	a, b, bAddr := chaosPair(t, cn)
	if _, err := a.WriteToUDPAddrPort([]byte("x"), bAddr); err != nil {
		t.Fatal(err)
	}
	if n := drain(b); n != 0 {
		t.Fatalf("edge link with Drop=1 delivered %d datagrams", n)
	}
	if err := cn.MarkReliable(a.LocalAddr().String()); err != nil {
		t.Fatal(err)
	}
	if err := cn.MarkReliable(b.LocalAddr().String()); err != nil {
		t.Fatal(err)
	}
	if _, err := a.WriteToUDPAddrPort([]byte("y"), bAddr); err != nil {
		t.Fatal(err)
	}
	if n := drain(b); n != 1 {
		t.Fatalf("reliable link delivered %d datagrams, want 1", n)
	}
}

// TestChaosNetDupAll: Dup=1 delivers every edge datagram exactly twice.
func TestChaosNetDupAll(t *testing.T) {
	cn := NewChaosNet(ChaosConfig{Seed: 2, Dup: 1.0})
	a, b, bAddr := chaosPair(t, cn)
	if _, err := a.WriteToUDPAddrPort([]byte("x"), bAddr); err != nil {
		t.Fatal(err)
	}
	if n := drain(b); n != 2 {
		t.Fatalf("Dup=1 delivered %d copies, want 2", n)
	}
}

// TestChaosNetWaitDrainsDelays: Wait() blocks until every delayed
// delivery has landed, so a post-Wait inbox holds all survivors.
func TestChaosNetWaitDrainsDelays(t *testing.T) {
	cn := NewChaosNet(ChaosConfig{Seed: 3, Delay: 1.0, MaxDelay: 5 * time.Millisecond})
	a, b, bAddr := chaosPair(t, cn)
	const n = 16
	for i := 0; i < n; i++ {
		if _, err := a.WriteToUDPAddrPort([]byte{byte(i)}, bAddr); err != nil {
			t.Fatal(err)
		}
	}
	cn.Wait()
	if got := drain(b); got != n {
		t.Fatalf("after Wait, inbox held %d/%d delayed datagrams", got, n)
	}
}

// TestChaosNetDeterministic: two nets with the same seed and the same
// traffic make identical drop/dup decisions.
func TestChaosNetDeterministic(t *testing.T) {
	outcome := func() []int {
		cn := NewChaosNet(ChaosConfig{Seed: 42, Drop: 0.5, Dup: 0.5})
		a, b, bAddr := chaosPair(t, cn)
		var counts []int
		for i := 0; i < 32; i++ {
			if _, err := a.WriteToUDPAddrPort([]byte{byte(i)}, bAddr); err != nil {
				t.Fatal(err)
			}
			counts = append(counts, drain(b))
		}
		return counts
	}
	x, y := outcome(), outcome()
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("seed 42 diverged at datagram %d: %d vs %d copies", i, x[i], y[i])
		}
	}
}
