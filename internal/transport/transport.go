// Package transport runs NetLock over real UDP sockets: a switch node that
// processes NetLock packets through the data-plane program
// (internal/switchdp), lock-server nodes that own unpopular locks and
// buffer overflow, and a multiplexed client.
//
// The deployment mirrors the paper's: clients address the switch (it is the
// ToR; every packet traverses it), the switch either processes a request in
// its data plane or forwards it to the lock server responsible for the
// lock, and grants flow back through the switch to the client. Since grant
// notifications can be emitted long after the request packet (when a queued
// lock is granted by someone else's release), the switch keeps a pending
// table mapping (lock, transaction) to the requester's UDP address.
//
// Datagrams carry either one bare wire.Header or a wire batch frame
// (wire.BatchWriter) holding up to wire.MaxBatchOps headers; the first byte
// disambiguates. Every node decodes both; every node batches its egress
// per destination and flushes at its own policy (see egress and Client).
//
// The client-facing edge is lossy and the protocol tolerates it end to
// end: clients retransmit unanswered acquires and un-acked releases, and
// the switch deduplicates. A retransmitted acquire whose grant was lost is
// answered from the switch's grant cache without touching the data plane
// (a duplicate enqueue would install a ghost holder); a retransmitted
// release is forwarded to the lock server at most once (a release dequeues
// the granted head of its queue, so a duplicate would release a different
// holder's lock). Releases are acknowledged end to end with
// wire.OpReleaseAck — by the switch for switch-resident locks, by the
// owning lock server otherwise — and the ack is idempotent. The in-rack
// links between the switch and its servers are assumed reliable, as in the
// paper's rack deployment; the q1/q2 overflow protocol (§4.3) sends
// server-bound packets exactly once.
//
// This is the demonstration plane: correctness over sockets, not the
// evaluation plane (internal/cluster reproduces the paper's numbers in
// virtual time).
package transport

import (
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"

	"netlock/internal/lockserver"
	"netlock/internal/obs"
	"netlock/internal/switchdp"
	"netlock/internal/wire"
)

// maxPacket bounds one ingress datagram; it comfortably holds a full batch
// frame (wire.MaxDatagram).
const maxPacket = 2048

// Switch is a NetLock switch node on a UDP socket.
type Switch struct {
	conn PacketConn
	dp   *switchdp.Switch
	now  func() int64
	o    *obs.Stripe

	mu      sync.Mutex
	servers []netip.AddrPort
	// pending maps an acquire awaiting its grant to the requester.
	pending map[pendKey]pendingReq
	// granted caches delivered grants until their release completes, for
	// three duties: answering acquire retransmits whose grant was lost
	// without re-entering the data plane, gating the data plane to
	// exactly one release per grant, and re-sending undelivered grants
	// from the sweep (the release is the delivery ack; a live client
	// auto-releases a grant it no longer has an op for).
	granted map[pendKey]grantEntry
	// relPending maps a release forwarded to a lock server (not yet
	// acked) to the client awaiting the ack. While an entry exists,
	// client retransmits of that release only refresh the address.
	relPending map[pendKey]netip.AddrPort
	// done tombstones recently completed (lock, txn) keys. A
	// network-delayed duplicate of an acquire whose whole cycle already
	// finished finds pending and granted empty, so without the tombstone
	// it would re-enter the rack as a fresh request and leave a ghost
	// holder wedging the lock — the grant-re-send/auto-release recovery
	// above only works while the duplicate's owner keeps answering.
	// Recorded in the apply path, so every chain member (and any future
	// head) shares the window; doneRing bounds it by evicting the oldest
	// key. Txn IDs are drawn once per op from per-client disjoint random
	// ranges, so a completed key never returns legitimately.
	done     map[pendKey]struct{}
	doneRing []pendKey
	doneNext int
	eg       *egress

	// serverRoute redirects a drained (or failed) server's partition index
	// to its replacement; serverFor follows the chain. Routing is
	// send-side-only state: members may briefly disagree during a flip
	// without diverging, because only the tail's sends are visible.
	serverRoute map[int]int
	// migStage accumulates a promote's sequenced state records (MigBegin …
	// MigEntry) per lock until MigCommit installs them; part of the
	// replicated apply path, so every member stages identically.
	migStage map[uint32]*migStaging
	// migDemoted / migErr hand the last applyMigrate result on THIS member
	// back to the head-side entry points (sequence() applies locally and
	// synchronously under s.mu).
	migDemoted *switchdp.LockExport
	migErr     error

	// chain is the replication role (see chain.go). NewSwitch initializes
	// a single-member chain — head and tail at epoch 0 — which behaves
	// exactly like an unreplicated switch.
	chain  chainState
	selfAP netip.AddrPort

	// Multi-rack fabric routing (see shard.go). smap is nil outside a
	// fabric; smapFrame caches its encoding for wrong-rack bounces, and
	// fenced marks shards mid re-home whose client ops are dropped.
	smap      *wire.ShardMap
	selfRack  int
	smapFrame []byte
	fenced    map[uint32]bool

	flushEvery time.Duration

	wg     sync.WaitGroup
	closed chan struct{}
}

type pendKey struct {
	lock uint32
	txn  uint64
}

// pendingReq remembers an acquire awaiting its grant: the requester's UDP
// address and, when observability is on, the arrival instant — the
// switch's view of end-to-end acquire latency runs from here to grant
// delivery.
type pendingReq struct {
	addr   netip.AddrPort
	sentNs int64
}

// grantEntry is one delivered-but-unreleased grant: the cached grant
// header, the holder's address, and the last delivery attempt (data-plane
// clock) for re-send pacing.
type grantEntry struct {
	hdr    wire.Header
	addr   netip.AddrPort
	sentNs int64
}

// grantResendNs paces the sweep's re-send of un-released grants. Held
// locks cost one duplicate grant datagram per interval (ignored by live
// holders); grants for vanished clients re-send until the lease sweep
// reclaims the hold.
const grantResendNs = int64(100 * time.Millisecond)

// doneWindow is how many completed (lock, txn) keys each switch remembers
// for duplicate suppression. A delayed duplicate arrives within a few
// retransmit intervals of its op completing; the window only has to
// outlast that, not the run.
const doneWindow = 8192

// SwitchConfig configures a switch node.
type SwitchConfig struct {
	// Listen is the UDP address to bind ("127.0.0.1:0" for ephemeral).
	Listen string
	// DataPlane configures the switch program.
	DataPlane switchdp.Config
	// Servers are the lock servers' UDP addresses; locks partition across
	// them by lockserver.RSSCore.
	Servers []string
	// SweepInterval runs the control-plane sweep: expired-lease release
	// injection and stranded-overflow re-notification. Default 10ms.
	SweepInterval time.Duration
	// EgressFlush, when nonzero, holds egress batches open across ingress
	// datagrams and flushes them on this timer, trading latency for
	// larger frames. Zero (the default) flushes after every ingress
	// datagram and control sweep.
	EgressFlush time.Duration
	// Net is the socket factory; nil means real UDP.
	Net Network
}

// NewSwitch binds and starts a switch node.
func NewSwitch(cfg SwitchConfig) (*Switch, error) {
	nw := cfg.Net
	if nw == nil {
		nw = UDP
	}
	conn, err := nw.Listen(cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	if cfg.DataPlane.Now == nil {
		start := time.Now()
		cfg.DataPlane.Now = func() int64 { return int64(time.Since(start)) }
	}
	s := &Switch{
		conn:       conn,
		dp:         switchdp.New(cfg.DataPlane),
		o:          cfg.DataPlane.Obs,
		pending:    make(map[pendKey]pendingReq),
		granted:    make(map[pendKey]grantEntry),
		relPending: make(map[pendKey]netip.AddrPort),
		migStage:   make(map[uint32]*migStaging),
		done:       make(map[pendKey]struct{}),
		doneRing:   make([]pendKey, doneWindow),
		flushEvery: cfg.EgressFlush,
		closed:     make(chan struct{}),
	}
	s.eg = newEgress(conn, s.o, 0)
	s.chain = chainState{head: true, tail: true}
	if ua, ok := conn.LocalAddr().(*net.UDPAddr); ok {
		s.selfAP = normAddrPort(ua.AddrPort())
	}
	for _, sa := range cfg.Servers {
		ap, err := resolveAddrPort(sa)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("transport: resolve server addr %q: %w", sa, err)
		}
		s.servers = append(s.servers, ap)
	}
	if len(s.servers) == 0 {
		conn.Close()
		return nil, fmt.Errorf("transport: switch needs at least one lock server")
	}
	if cfg.SweepInterval == 0 {
		cfg.SweepInterval = 10 * time.Millisecond
	}
	s.now = cfg.DataPlane.Now
	s.wg.Add(1)
	go s.readLoop()
	s.wg.Add(1)
	go s.sweepLoop(cfg.SweepInterval)
	if s.flushEvery > 0 {
		s.wg.Add(1)
		go s.flushLoop()
	}
	return s, nil
}

// sweepLoop is the switch control plane's periodic poll (§4.5): it injects
// releases for expired leases, re-issues push notifications for stranded
// overflow queues, and re-sends undelivered grants. Sweep duties are split
// by chain role: only the head scans for expired leases (the decision
// consults the wall clock, so it must be made once and sequenced down the
// chain like any other op), and only the tail performs external sends (the
// stranded-queue notifications and grant re-sends), reading its own
// replica of the same state the head sees.
func (s *Switch) sweepLoop(interval time.Duration) {
	defer s.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.closed:
			return
		case <-t.C:
			s.mu.Lock()
			if s.chain.head {
				for _, h := range s.dp.CtrlScanExpired(s.now()) {
					h := h
					// Sequenced with OriginCtrl: every member drops the
					// grant cache (so a late client release acks
					// idempotently instead of releasing whoever holds the
					// lock next) and applies the release.
					s.sequence(wire.OriginCtrl, &h)
				}
			}
			if s.chain.tail {
				for _, h := range s.dp.CtrlScanStranded() {
					h := h
					s.eg.send(&h, s.serverFor(h.LockID))
				}
				now := s.now()
				for key, g := range s.granted {
					if _, releasing := s.relPending[key]; releasing {
						continue
					}
					if now-g.sentNs < grantResendNs {
						continue
					}
					g.sentNs = now
					s.granted[key] = g
					s.eg.send(&g.hdr, g.addr)
				}
			}
			s.chainHeal()
			s.eg.flushAll()
			s.flushChain()
			s.mu.Unlock()
		}
	}
}

// flushLoop drains held-open egress batches on the EgressFlush timer.
func (s *Switch) flushLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.flushEvery)
	defer t.Stop()
	for {
		select {
		case <-s.closed:
			return
		case <-t.C:
			s.mu.Lock()
			s.eg.flushAll()
			s.flushChain()
			s.mu.Unlock()
		}
	}
}

// Addr returns the switch's bound UDP address.
func (s *Switch) Addr() string { return s.conn.LocalAddr().String() }

// WithDataPlane runs fn with exclusive access to the switch program,
// serialized against packet processing and the control-plane sweep. This is
// the only way to reach the data plane: control operations (installing
// locks, quotas) race with the read loop otherwise.
func (s *Switch) WithDataPlane(fn func(dp *switchdp.Switch)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn(s.dp)
}

// SwitchSnapshot is a consistent point-in-time view of a switch node.
type SwitchSnapshot struct {
	// Stats are the data-plane processing counters.
	Stats switchdp.Stats
	// ResidentLocks is the number of switch-resident locks.
	ResidentLocks int
	// SlotsInUse is the number of occupied shared-queue slots.
	SlotsInUse uint64
	// FreeEntries is the number of free lock-table entries.
	FreeEntries int
	// PendingAcquires is the number of acquires whose grant has not yet
	// been delivered to a client.
	PendingAcquires int
	// TrackedGrants is the number of delivered grants whose release has
	// not yet completed.
	TrackedGrants int
	// PendingReleases is the number of releases forwarded to a lock
	// server and not yet acked.
	PendingReleases int
}

// Snapshot captures the switch's counters and occupancy gauges under the
// same serialization WithDataPlane uses; the observability exporter
// (cmd/netlockd) builds its gauge set from this.
func (s *Switch) Snapshot() SwitchSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SwitchSnapshot{
		Stats:           s.dp.Stats(),
		ResidentLocks:   len(s.dp.CtrlResidentLocks()),
		SlotsInUse:      s.dp.CtrlSlotsInUse(),
		FreeEntries:     s.dp.CtrlFreeEntries(),
		PendingAcquires: len(s.pending),
		TrackedGrants:   len(s.granted),
		PendingReleases: len(s.relPending),
	}
}

// Close stops the node.
func (s *Switch) Close() error {
	select {
	case <-s.closed:
		return nil
	default:
	}
	close(s.closed)
	err := s.conn.Close()
	s.wg.Wait()
	return err
}

func (s *Switch) serverFor(lockID uint32) netip.AddrPort {
	i := lockserver.RSSCore(lockID, len(s.servers))
	for {
		next, ok := s.serverRoute[i]
		if !ok {
			return s.servers[i]
		}
		i = next
	}
}

// SetServerRedirect reroutes partition victim to target, following any
// existing redirects from target. The controller flips routing only after
// the victim's lock state has moved, so a redirected request always finds
// its lock at the target.
func (s *Switch) SetServerRedirect(victim, target int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if victim < 0 || victim >= len(s.servers) || target < 0 || target >= len(s.servers) {
		return fmt.Errorf("transport: redirect %d -> %d out of range", victim, target)
	}
	if s.serverRoute == nil {
		s.serverRoute = make(map[int]int)
	}
	// Refuse cycles: the target must not resolve back to the victim.
	i := target
	for {
		next, ok := s.serverRoute[i]
		if !ok {
			break
		}
		if next == victim {
			return fmt.Errorf("transport: redirect %d -> %d would cycle", victim, target)
		}
		i = next
	}
	s.serverRoute[victim] = target
	return nil
}

// AddServerAddr appends a lock server to this switch's partition table.
// Growing the table changes RSSCore homes for existing locks, so the
// controller migrates affected lock state first and flips every member's
// table last.
func (s *Switch) AddServerAddr(addr string) error {
	ap, err := resolveAddrPort(addr)
	if err != nil {
		return fmt.Errorf("transport: resolve server addr %q: %w", addr, err)
	}
	s.mu.Lock()
	s.servers = append(s.servers, ap)
	s.mu.Unlock()
	return nil
}

// NumServers returns the size of the switch's partition table.
func (s *Switch) NumServers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.servers)
}

func (s *Switch) fromServer(ap netip.AddrPort) bool {
	for _, sv := range s.servers {
		if sv == ap {
			return true
		}
	}
	return false
}

func (s *Switch) readLoop() {
	defer s.wg.Done()
	buf := make([]byte, maxPacket)
	var h wire.Header
	var br wire.BatchReader
	for {
		n, from, err := s.conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				continue // transient error; the ToR keeps forwarding
			}
		}
		from = normAddrPort(from)
		data := buf[:n]
		s.mu.Lock()
		if wire.IsChain(data) {
			s.handleChain(data, from)
		} else if wire.IsBatch(data) {
			if br.Reset(data) == nil {
				ops := 0
				for {
					ok, err := br.Next(&h)
					if err != nil || !ok {
						break
					}
					ops++
					s.handleOp(&h, from)
				}
				if ops > 0 {
					s.o.Inc(obs.CtrFramesIn)
					s.o.Add(obs.CtrOpsIn, uint64(ops))
				}
			}
		} else if h.DecodeFromBytes(data) == nil {
			s.o.Inc(obs.CtrFramesIn)
			s.o.Inc(obs.CtrOpsIn)
			s.handleOp(&h, from)
		}
		if s.flushEvery == 0 {
			s.eg.flushAll()
		}
		// Chain records never wait for the egress timer: replication
		// latency gates every externally-visible grant.
		s.flushChain()
		s.mu.Unlock()
	}
}

// handleOp processes one external ingress operation: the head classifies
// and sequences it; other members relay it to the head. Caller holds s.mu.
func (s *Switch) handleOp(h *wire.Header, from netip.AddrPort) {
	if !s.chain.head {
		s.relayToHead(h, from)
		return
	}
	origin := wire.OriginClient
	if s.fromServer(from) {
		origin = wire.OriginServer
	}
	s.headIngress(origin, h, from)
}

// headIngress is the chain head's (and a standalone switch's) ingress
// stage: it answers retransmit duplicates from the replicated tables —
// those answers mutate nothing, so the head emits them directly — and
// sequences everything that does mutate replicated state. Caller holds
// s.mu.
func (s *Switch) headIngress(origin wire.ChainOrigin, h *wire.Header, from netip.AddrPort) {
	if h.Op == wire.OpMigrate {
		// Migrate records enter the stream only through the head-side move
		// entry points (MigrateDemoteLock / MigratePromoteLock); an external
		// OpMigrate datagram is spoofed or corrupt.
		return
	}
	if origin == wire.OriginClient {
		// Fabric shard routing runs before the dedup tables: a lock whose
		// shard moved to another rack may still have stale table entries
		// here, and answering from them would speak for state that now
		// lives elsewhere.
		if s.shardFilter(h, from) {
			return
		}
		switch h.Op {
		case wire.OpAcquire:
			if h.Flags&wire.FlagOverflow == 0 {
				s.headAcquire(h, from)
				return
			}
		case wire.OpRelease:
			s.headRelease(h, from)
			return
		case wire.OpEpoch:
			return // control-plane announcement; clients never send these
		}
	}
	s.sequence(origin, h)
}

// headAcquire processes a client acquire, deduplicating retransmits.
// Caller holds s.mu.
func (s *Switch) headAcquire(h *wire.Header, from netip.AddrPort) {
	key := pendKey{h.LockID, h.TxnID}
	if g, ok := s.granted[key]; ok {
		// Retransmit of an acquire whose grant (or everything since) was
		// lost: answer from the cache. The data plane must not see the
		// duplicate — it would enqueue a ghost holder.
		if from.IsValid() {
			g.addr = from
		}
		g.sentNs = s.now()
		s.granted[key] = g
		s.eg.send(&g.hdr, g.addr)
		return
	}
	if p, ok := s.pending[key]; ok {
		// Retransmit of a still-queued acquire. For a switch-resident
		// lock the request is already queued in the data plane: refresh
		// the return address only. For a server-owned lock the forward
		// leg (tail→server) or its grant may have been lost — to the
		// in-rack network or to a failed chain member — so re-sequence
		// the acquire end to end. The server deduplicates by (lock, txn)
		// and re-emits granted entries, so re-forwarding on every
		// retransmit is a self-healing no-op in the common case.
		if from.IsValid() {
			p.addr = from
		}
		if !s.dp.CtrlHasLock(h.LockID) {
			s.stampClient(h, from)
			s.sequence(wire.OriginClient, h)
			return
		}
		s.pending[key] = p
		return
	}
	if _, ok := s.done[key]; ok {
		// Delayed duplicate of an acquire whose whole cycle already
		// completed: the client is done with this txn, so drop it —
		// admitting it would enqueue a ghost holder.
		return
	}
	if s.chain.meterAtHead && !s.dp.CtrlMeterAdmit(h.TenantID) {
		// Chain-mode quota check, decided once before sequencing: the
		// meter consults the wall clock, so replicas metering
		// independently would diverge. Rejects mutate no replicated
		// state; the head answers directly.
		if from.IsValid() {
			rej := *h
			rej.Op = wire.OpReject
			s.eg.send(&rej, from)
		}
		return
	}
	s.stampClient(h, from)
	s.sequence(wire.OriginClient, h)
}

// headRelease applies the at-most-one-data-plane-release rule to a client
// release. Caller holds s.mu.
func (s *Switch) headRelease(h *wire.Header, from netip.AddrPort) {
	key := pendKey{h.LockID, h.TxnID}
	if _, ok := s.relPending[key]; ok {
		// Client retransmit while the forwarded release is still at its
		// server: refresh the ack address. If the lock is server-owned
		// the forward (or its ack) may have been lost, so re-sequence it
		// — the server matches releases by txn and counts an
		// already-applied one as a duplicate no-op.
		if from.IsValid() {
			s.relPending[key] = from
		}
		if !s.dp.CtrlHasLock(h.LockID) {
			s.stampClient(h, from)
			s.sequence(wire.OriginClient, h)
		}
		return
	}
	if _, held := s.granted[key]; !held {
		// Duplicate of a completed release, or a release for a hold the
		// lease sweep already reclaimed: ack idempotently without
		// touching the data plane.
		if from.IsValid() {
			s.ackRelease(h, from)
		}
		return
	}
	s.stampClient(h, from)
	s.sequence(wire.OriginClient, h)
}

// applyOp applies one sequenced operation to this member's replicated
// state: the data plane plus the pending/granted/relPending dedup tables.
// Every chain member executes the identical op stream through this
// function; only the tail's client- and server-bound sends are externally
// visible. Caller holds s.mu.
func (s *Switch) applyOp(origin wire.ChainOrigin, h *wire.Header) {
	key := pendKey{h.LockID, h.TxnID}
	switch h.Op {
	case wire.OpMigrate:
		s.applyMigrate(h)
	case wire.OpGrant, wire.OpReject, wire.OpFetch:
		// Passthrough from a lock server toward the client.
		s.deliverToClient(h)
	case wire.OpReleaseAck:
		// The owning server consumed a forwarded release: complete the
		// end-to-end ack.
		if to, ok := s.relPending[key]; ok {
			delete(s.relPending, key)
			delete(s.granted, key)
			s.markDone(key)
			s.emitToClient(h, to)
		}
	case wire.OpRelease:
		s.applyRelease(origin, h, key)
	case wire.OpAcquire:
		if origin != wire.OriginClient || h.Flags&wire.FlagOverflow != 0 {
			// Server-originated (a request bounced across a lock move) or
			// overflow-marked: the pending entry for the original client,
			// if any, must not be rewritten. A bounce whose txn the data
			// plane already queues is a retransmit that crossed a
			// server-to-switch move (the server's dedup state was exported
			// with the lock); admitting it would enqueue a ghost duplicate.
			if s.dp.CtrlHasTxn(h.LockID, h.TxnID) {
				return
			}
			s.process(h)
			return
		}
		p := pendingReq{addr: clientAddrOf(h)}
		if s.o.Enabled() {
			p.sentNs = s.now()
		}
		s.pending[key] = p
		s.process(h)
	case wire.OpPush:
		// Same ghost-duplicate guard for the overflow replay path: a
		// retransmit can sit in a server's q2 while its original migrates
		// into the switch, and the later push would double-queue it. A
		// final push's clear-overflow side effect must survive the drop,
		// so it is replayed in its pure control form (TxnNone).
		if s.dp.CtrlHasTxn(h.LockID, h.TxnID) {
			if h.Flags&wire.FlagOverflow != 0 {
				cl := *h
				cl.TxnID = wire.TxnNone
				s.process(&cl)
			}
			return
		}
		s.process(h)
	default:
		s.process(h)
	}
}

// markDone tombstones a completed (lock, txn) key so late duplicates of
// its acquire are dropped at head ingress instead of re-entering the rack
// as ghost holders. Runs in the apply path: every chain member records the
// identical window. Caller holds s.mu.
func (s *Switch) markDone(key pendKey) {
	if _, ok := s.done[key]; ok {
		return
	}
	if old := s.doneRing[s.doneNext]; old != (pendKey{}) {
		delete(s.done, old)
	}
	s.doneRing[s.doneNext] = key
	s.doneNext = (s.doneNext + 1) % len(s.doneRing)
	s.done[key] = struct{}{}
}

// applyRelease applies one sequenced release by origin. Caller holds s.mu.
func (s *Switch) applyRelease(origin wire.ChainOrigin, h *wire.Header, key pendKey) {
	switch origin {
	case wire.OriginServer:
		// Bounced across a server-to-switch move: the data plane owns the
		// lock now. In-rack links are reliable, but the bounce can still be
		// a duplicate: a release retransmit re-sequenced while the lock was
		// server-owned puts two copies in flight, and when a promote's
		// export lands between them the post-export server has no queue
		// state left to deduplicate with — it bounces both. The data plane
		// releases by queue head, not by transaction (§4.2), so the second
		// copy would dequeue whoever holds the lock now. Admit a bounce
		// only if the releasing transaction is actually queued here;
		// otherwise its hold is already gone — finish idempotently.
		if s.dp.CtrlHasLock(h.LockID) && !s.dp.CtrlHasTxn(h.LockID, h.TxnID) {
			delete(s.granted, key)
			s.markDone(key)
			if to, ok := s.relPending[key]; ok {
				delete(s.relPending, key)
				s.ackReleaseTail(h, to)
			}
			return
		}
		if s.processRelease(h, key) {
			return // forwarded onward again; ack still pending
		}
		delete(s.granted, key)
		s.markDone(key)
		if to, ok := s.relPending[key]; ok {
			delete(s.relPending, key)
			s.ackReleaseTail(h, to)
		}
	case wire.OriginCtrl:
		// The head's lease sweep reclaimed this hold; drop its grant
		// cache so a late client release acks idempotently instead of
		// releasing whoever holds the lock next. The hold's owner is
		// presumed gone, so its late duplicates are tombstoned too.
		delete(s.granted, key)
		delete(s.relPending, key)
		s.markDone(key)
		s.process(h)
	default:
		// Client release, already vetted by the head's dedup tables.
		if s.processRelease(h, key) {
			s.relPending[key] = clientAddrOf(h) // the owning server will ack
			return
		}
		delete(s.granted, key)
		s.markDone(key)
		s.ackReleaseTail(h, clientAddrOf(h))
	}
}

// processRelease runs one release through the data plane and reports
// whether it was forwarded onward to a lock server. Caller holds s.mu.
func (s *Switch) processRelease(h *wire.Header, key pendKey) bool {
	emits, _ := s.dp.ProcessPacket(h)
	forwarded := false
	for i := range emits {
		e := &emits[i]
		if e.Action == switchdp.ActForward && e.Hdr.Op == wire.OpRelease &&
			e.Hdr.LockID == key.lock && e.Hdr.TxnID == key.txn {
			forwarded = true
		}
		s.routeEmit(e)
	}
	return forwarded
}

// ackRelease sends an OpReleaseAck echo of h to the releasing client.
// Caller holds s.mu.
func (s *Switch) ackRelease(h *wire.Header, to netip.AddrPort) {
	ack := *h
	ack.Op = wire.OpReleaseAck
	s.eg.send(&ack, to)
}

// ackReleaseTail is ackRelease gated to the tail: every member applies the
// table mutation, only the tail's ack leaves the rack. Caller holds s.mu.
func (s *Switch) ackReleaseTail(h *wire.Header, to netip.AddrPort) {
	if s.chain.tail && to.IsValid() {
		s.ackRelease(h, to)
	}
}

// emitToClient sends a client-bound packet if this member is the tail.
// Caller holds s.mu.
func (s *Switch) emitToClient(h *wire.Header, to netip.AddrPort) {
	if s.chain.tail && to.IsValid() {
		s.eg.send(h, to)
	}
}

// process runs one packet through the data plane and routes its emits.
// Caller holds s.mu.
func (s *Switch) process(h *wire.Header) {
	emits, _ := s.dp.ProcessPacket(h)
	for i := range emits {
		s.routeEmit(&emits[i])
	}
}

// routeEmit sends one switch output packet. Caller holds s.mu.
func (s *Switch) routeEmit(e *switchdp.Emit) {
	switch e.Action {
	case switchdp.ActGrant, switchdp.ActReject, switchdp.ActFetch:
		s.deliverToClient(&e.Hdr)
	case switchdp.ActForward, switchdp.ActForwardOverflow, switchdp.ActPushNotify:
		// Server-bound traffic is emitted by the tail only: a grant that a
		// server produces in response is then externally visible exactly
		// when the whole chain has recorded the request that caused it.
		if s.chain.tail {
			s.eg.send(&e.Hdr, s.serverFor(e.Hdr.LockID))
		}
	}
}

// deliverToClient forwards a grant/reject to the requester recorded in the
// pending table. Caller holds s.mu.
func (s *Switch) deliverToClient(h *wire.Header) {
	key := pendKey{h.LockID, h.TxnID}
	to, ok := s.pending[key]
	if !ok {
		return // duplicate or expired
	}
	delete(s.pending, key)
	if h.Op != wire.OpReject {
		// Cache the grant until its release completes: acquire
		// retransmits are answered from here, and the sweep re-sends it
		// until the release acknowledges delivery.
		s.granted[key] = grantEntry{hdr: *h, addr: to.addr, sentNs: s.now()}
		if to.sentNs != 0 {
			s.o.Observe(obs.StageAcquireE2E, s.now()-to.sentNs)
		}
	}
	s.emitToClient(h, to.addr)
}

// Server is a NetLock lock-server node on a UDP socket.
type Server struct {
	conn PacketConn
	ls   *lockserver.Server

	mu         sync.Mutex
	switchAddr netip.AddrPort
	eg         *egress

	wg     sync.WaitGroup
	closed chan struct{}
}

// ServerConfig configures a lock-server node.
type ServerConfig struct {
	Listen string
	Config lockserver.Config
	// Net is the socket factory; nil means real UDP.
	Net Network
}

// NewServer binds and starts a lock-server node. The switch address is set
// later with SetSwitchAddr (the switch must know the servers first).
func NewServer(cfg ServerConfig) (*Server, error) {
	nw := cfg.Net
	if nw == nil {
		nw = UDP
	}
	conn, err := nw.Listen(cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	if cfg.Config.Priorities == 0 {
		cfg.Config.Priorities = 1
	}
	if cfg.Config.Now == nil {
		start := time.Now()
		cfg.Config.Now = func() int64 { return int64(time.Since(start)) }
	}
	srv := &Server{
		conn:   conn,
		ls:     lockserver.New(cfg.Config),
		closed: make(chan struct{}),
	}
	srv.eg = newEgress(conn, cfg.Config.Obs, 0)
	srv.wg.Add(1)
	go srv.readLoop()
	return srv, nil
}

// Addr returns the server's bound UDP address.
func (s *Server) Addr() string { return s.conn.LocalAddr().String() }

// SetSwitchAddr points the server at its switch (for pushes and grant
// routing).
func (s *Server) SetSwitchAddr(addr string) error {
	ap, err := resolveAddrPort(addr)
	if err != nil {
		return fmt.Errorf("transport: resolve switch addr: %w", err)
	}
	s.mu.Lock()
	s.switchAddr = ap
	s.mu.Unlock()
	return nil
}

// LockServer exposes the underlying lock table for control operations.
func (s *Server) LockServer() *lockserver.Server { return s.ls }

// WithLockServer runs fn with exclusive access to the lock table,
// serialized against packet processing — the safe way to issue control
// operations (ownership moves, policy changes) on a live node.
func (s *Server) WithLockServer(fn func(ls *lockserver.Server)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn(s.ls)
}

// InstallSwitchLock makes lockID switch-resident on a live rack: the
// regions (one per priority bank) are installed in the switch data plane
// and the owning lock server (by RSS steering) releases ownership.
//
// Deprecated: use ctrlplane.Controller.InstallLock (or the SwitchLocks
// field of ctrlplane.Config), which installs chain-wide — on a replicated
// chain this helper touches only one member, leaving replicas unable to
// apply the op stream. It remains for single-switch racks wired by hand
// and will be removed once no caller is left.
func InstallSwitchLock(sw *Switch, servers []*Server, lockID uint32, regions []switchdp.Region) error {
	var err error
	sw.WithDataPlane(func(dp *switchdp.Switch) {
		err = dp.CtrlInstallLock(lockID, regions)
	})
	if err != nil {
		return err
	}
	srv := servers[lockserver.RSSCore(lockID, len(servers))]
	srv.WithLockServer(func(ls *lockserver.Server) {
		err = ls.CtrlReleaseOwnership(lockID)
	})
	return err
}

// Close stops the node.
func (s *Server) Close() error {
	select {
	case <-s.closed:
		return nil
	default:
	}
	close(s.closed)
	err := s.conn.Close()
	s.wg.Wait()
	return err
}

func (s *Server) readLoop() {
	defer s.wg.Done()
	buf := make([]byte, maxPacket)
	var h wire.Header
	var br wire.BatchReader
	for {
		n, _, err := s.conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				continue
			}
		}
		data := buf[:n]
		s.mu.Lock()
		if wire.IsBatch(data) {
			if br.Reset(data) == nil {
				for {
					ok, err := br.Next(&h)
					if err != nil || !ok {
						break
					}
					s.handleOp(&h)
				}
			}
		} else if h.DecodeFromBytes(data) == nil {
			s.handleOp(&h)
		}
		s.eg.flushAll()
		s.mu.Unlock()
	}
}

// handleOp processes one ingress operation. Caller holds s.mu.
func (s *Server) handleOp(h *wire.Header) {
	sw := s.switchAddr
	emits := s.ls.ProcessPacket(h)
	bounced := false
	for i := range emits {
		e := &emits[i]
		if e.Hdr.Op == wire.OpRelease && e.Hdr.LockID == h.LockID && e.Hdr.TxnID == h.TxnID {
			// The release raced a server-to-switch move and bounced; the
			// switch (which owns the lock now) acks it, not us.
			bounced = true
		}
		// Every server output returns through the switch: grants are
		// forwarded to the client by the switch's pending table, and
		// pushes are processed by its data plane.
		if sw.IsValid() {
			s.eg.send(&e.Hdr, sw)
		}
	}
	if h.Op == wire.OpRelease && !bounced && sw.IsValid() {
		// Consumed (or spurious) release: ack it end to end so the
		// client stops retransmitting. The switch forwards the ack and
		// retires its grant cache.
		ack := *h
		ack.Op = wire.OpReleaseAck
		s.eg.send(&ack, sw)
	}
}
