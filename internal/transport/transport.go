// Package transport runs NetLock over real UDP sockets: a switch node that
// processes NetLock packets through the data-plane program
// (internal/switchdp), lock-server nodes that own unpopular locks and
// buffer overflow, and a client.
//
// The deployment mirrors the paper's: clients address the switch (it is the
// ToR; every packet traverses it), the switch either processes a request in
// its data plane or forwards it to the lock server responsible for the
// lock, and grants flow back through the switch to the client. Since grant
// notifications can be emitted long after the request packet (when a queued
// lock is granted by someone else's release), the switch keeps a pending
// table mapping (lock, transaction) to the requester's UDP address.
//
// This is the demonstration plane: correctness over sockets, not the
// evaluation plane (internal/cluster reproduces the paper's numbers in
// virtual time).
package transport

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"time"

	"netlock"
	"netlock/internal/lockserver"
	"netlock/internal/obs"
	"netlock/internal/switchdp"
	"netlock/internal/wire"
)

const maxPacket = 256

// Switch is a NetLock switch node on a UDP socket.
type Switch struct {
	conn *net.UDPConn
	dp   *switchdp.Switch
	now  func() int64
	o    *obs.Stripe

	mu      sync.Mutex
	servers []*net.UDPAddr
	pending map[pendKey]pendingReq

	wg     sync.WaitGroup
	closed chan struct{}
}

type pendKey struct {
	lock uint32
	txn  uint64
}

// pendingReq remembers an acquire awaiting its grant: the requester's UDP
// address and, when observability is on, the arrival instant — the switch's
// view of end-to-end acquire latency runs from here to grant delivery.
type pendingReq struct {
	addr   *net.UDPAddr
	sentNs int64
}

// SwitchConfig configures a switch node.
type SwitchConfig struct {
	// Listen is the UDP address to bind ("127.0.0.1:0" for ephemeral).
	Listen string
	// DataPlane configures the switch program.
	DataPlane switchdp.Config
	// Servers are the lock servers' UDP addresses; locks partition across
	// them by lockserver.RSSCore.
	Servers []string
	// SweepInterval runs the control-plane sweep: expired-lease release
	// injection and stranded-overflow re-notification. Default 10ms.
	SweepInterval time.Duration
}

// NewSwitch binds and starts a switch node.
func NewSwitch(cfg SwitchConfig) (*Switch, error) {
	addr, err := net.ResolveUDPAddr("udp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve listen addr: %w", err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	if cfg.DataPlane.Now == nil {
		start := time.Now()
		cfg.DataPlane.Now = func() int64 { return int64(time.Since(start)) }
	}
	s := &Switch{
		conn:    conn,
		dp:      switchdp.New(cfg.DataPlane),
		o:       cfg.DataPlane.Obs,
		pending: make(map[pendKey]pendingReq),
		closed:  make(chan struct{}),
	}
	for _, sa := range cfg.Servers {
		ua, err := net.ResolveUDPAddr("udp", sa)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("transport: resolve server addr %q: %w", sa, err)
		}
		s.servers = append(s.servers, ua)
	}
	if len(s.servers) == 0 {
		conn.Close()
		return nil, fmt.Errorf("transport: switch needs at least one lock server")
	}
	if cfg.SweepInterval == 0 {
		cfg.SweepInterval = 10 * time.Millisecond
	}
	s.now = cfg.DataPlane.Now
	s.wg.Add(1)
	go s.readLoop()
	s.wg.Add(1)
	go s.sweepLoop(cfg.SweepInterval)
	return s, nil
}

// sweepLoop is the switch control plane's periodic poll (§4.5): it injects
// releases for expired leases and re-issues push notifications for stranded
// overflow queues.
func (s *Switch) sweepLoop(interval time.Duration) {
	defer s.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	out := make([]byte, 0, wire.HeaderLen)
	for {
		select {
		case <-s.closed:
			return
		case <-t.C:
			s.mu.Lock()
			for _, h := range s.dp.CtrlScanExpired(s.now()) {
				h := h
				emits, _ := s.dp.ProcessPacket(&h)
				for _, e := range emits {
					s.routeEmit(e, &out)
				}
			}
			for _, h := range s.dp.CtrlScanStranded() {
				out = h.AppendTo(out[:0])
				s.conn.WriteToUDP(out, s.serverFor(h.LockID))
			}
			s.mu.Unlock()
		}
	}
}

// Addr returns the switch's bound UDP address.
func (s *Switch) Addr() string { return s.conn.LocalAddr().String() }

// WithDataPlane runs fn with exclusive access to the switch program,
// serialized against packet processing and the control-plane sweep. This is
// the only way to reach the data plane: control operations (installing
// locks, quotas) race with the read loop otherwise.
func (s *Switch) WithDataPlane(fn func(dp *switchdp.Switch)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn(s.dp)
}

// SwitchSnapshot is a consistent point-in-time view of a switch node.
type SwitchSnapshot struct {
	// Stats are the data-plane processing counters.
	Stats switchdp.Stats
	// ResidentLocks is the number of switch-resident locks.
	ResidentLocks int
	// SlotsInUse is the number of occupied shared-queue slots.
	SlotsInUse uint64
	// FreeEntries is the number of free lock-table entries.
	FreeEntries int
	// PendingAcquires is the number of acquires whose grant has not yet
	// been delivered to a client.
	PendingAcquires int
}

// Snapshot captures the switch's counters and occupancy gauges under the
// same serialization WithDataPlane uses; the observability exporter
// (cmd/netlockd) builds its gauge set from this.
func (s *Switch) Snapshot() SwitchSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SwitchSnapshot{
		Stats:           s.dp.Stats(),
		ResidentLocks:   len(s.dp.CtrlResidentLocks()),
		SlotsInUse:      s.dp.CtrlSlotsInUse(),
		FreeEntries:     s.dp.CtrlFreeEntries(),
		PendingAcquires: len(s.pending),
	}
}

// Close stops the node.
func (s *Switch) Close() error {
	select {
	case <-s.closed:
		return nil
	default:
	}
	close(s.closed)
	err := s.conn.Close()
	s.wg.Wait()
	return err
}

func (s *Switch) serverFor(lockID uint32) *net.UDPAddr {
	return s.servers[lockserver.RSSCore(lockID, len(s.servers))]
}

func (s *Switch) readLoop() {
	defer s.wg.Done()
	buf := make([]byte, maxPacket)
	var h wire.Header
	out := make([]byte, 0, wire.HeaderLen)
	for {
		n, from, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				continue // transient error; the ToR keeps forwarding
			}
		}
		if err := h.DecodeFromBytes(buf[:n]); err != nil {
			continue // not a NetLock packet
		}
		s.mu.Lock()
		switch h.Op {
		case wire.OpGrant, wire.OpReject, wire.OpFetch:
			// Passthrough from a lock server toward the client.
			s.deliverToClient(&h, &out)
		default:
			if h.Op == wire.OpAcquire && h.Flags&wire.FlagOverflow == 0 {
				// Remember the requester for the eventual grant. (Pushes
				// and overflow re-forwards keep the original entry.)
				p := pendingReq{addr: from}
				if s.o.Enabled() {
					p.sentNs = s.now()
				}
				// A retransmit must not reset the latency clock.
				if old, ok := s.pending[pendKey{h.LockID, h.TxnID}]; ok && old.sentNs != 0 {
					p.sentNs = old.sentNs
				}
				s.pending[pendKey{h.LockID, h.TxnID}] = p
			}
			emits, _ := s.dp.ProcessPacket(&h)
			for _, e := range emits {
				s.routeEmit(e, &out)
			}
		}
		s.mu.Unlock()
	}
}

// routeEmit sends one switch output packet. Caller holds s.mu.
func (s *Switch) routeEmit(e switchdp.Emit, out *[]byte) {
	switch e.Action {
	case switchdp.ActGrant, switchdp.ActReject, switchdp.ActFetch:
		h := e.Hdr
		s.deliverToClient(&h, out)
	case switchdp.ActForward, switchdp.ActForwardOverflow, switchdp.ActPushNotify:
		*out = e.Hdr.AppendTo((*out)[:0])
		s.conn.WriteToUDP(*out, s.serverFor(e.Hdr.LockID))
	}
}

// deliverToClient forwards a grant/reject to the requester recorded in the
// pending table. Caller holds s.mu.
func (s *Switch) deliverToClient(h *wire.Header, out *[]byte) {
	key := pendKey{h.LockID, h.TxnID}
	to, ok := s.pending[key]
	if !ok {
		return // duplicate or expired
	}
	delete(s.pending, key)
	if to.sentNs != 0 && h.Op != wire.OpReject {
		s.o.Observe(obs.StageAcquireE2E, s.now()-to.sentNs)
	}
	*out = h.AppendTo((*out)[:0])
	s.conn.WriteToUDP(*out, to.addr)
}

// Server is a NetLock lock-server node on a UDP socket.
type Server struct {
	conn *net.UDPConn
	ls   *lockserver.Server

	mu         sync.Mutex
	switchAddr *net.UDPAddr

	wg     sync.WaitGroup
	closed chan struct{}
}

// ServerConfig configures a lock-server node.
type ServerConfig struct {
	Listen string
	Config lockserver.Config
}

// NewServer binds and starts a lock-server node. The switch address is set
// later with SetSwitchAddr (the switch must know the servers first).
func NewServer(cfg ServerConfig) (*Server, error) {
	addr, err := net.ResolveUDPAddr("udp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve listen addr: %w", err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	if cfg.Config.Priorities == 0 {
		cfg.Config.Priorities = 1
	}
	if cfg.Config.Now == nil {
		start := time.Now()
		cfg.Config.Now = func() int64 { return int64(time.Since(start)) }
	}
	srv := &Server{
		conn:   conn,
		ls:     lockserver.New(cfg.Config),
		closed: make(chan struct{}),
	}
	srv.wg.Add(1)
	go srv.readLoop()
	return srv, nil
}

// Addr returns the server's bound UDP address.
func (s *Server) Addr() string { return s.conn.LocalAddr().String() }

// SetSwitchAddr points the server at its switch (for pushes and grant
// routing).
func (s *Server) SetSwitchAddr(addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("transport: resolve switch addr: %w", err)
	}
	s.mu.Lock()
	s.switchAddr = ua
	s.mu.Unlock()
	return nil
}

// LockServer exposes the underlying lock table for control operations.
func (s *Server) LockServer() *lockserver.Server { return s.ls }

// Close stops the node.
func (s *Server) Close() error {
	select {
	case <-s.closed:
		return nil
	default:
	}
	close(s.closed)
	err := s.conn.Close()
	s.wg.Wait()
	return err
}

func (s *Server) readLoop() {
	defer s.wg.Done()
	buf := make([]byte, maxPacket)
	var h wire.Header
	out := make([]byte, 0, wire.HeaderLen)
	for {
		n, _, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				continue
			}
		}
		if err := h.DecodeFromBytes(buf[:n]); err != nil {
			continue
		}
		s.mu.Lock()
		sw := s.switchAddr
		emits := s.ls.ProcessPacket(&h)
		for _, e := range emits {
			// Every server output returns through the switch: grants are
			// forwarded to the client by the switch's pending table, and
			// pushes are processed by its data plane.
			out = e.Hdr.AppendTo(out[:0])
			if sw != nil {
				s.conn.WriteToUDP(out, sw)
			}
		}
		s.mu.Unlock()
	}
}

// Client acquires and releases locks against a NetLock switch over UDP.
// Client is safe for concurrent use.
type Client struct {
	conn       *net.UDPConn
	switchAddr *net.UDPAddr

	mu      sync.Mutex
	nextTxn uint64
	waiters map[pendKey]chan wire.Header

	wg     sync.WaitGroup
	closed chan struct{}

	// RetryInterval resends unanswered acquires (packet loss). Default
	// 200ms.
	RetryInterval time.Duration
}

// NewClient creates a client socket pointed at the switch.
func NewClient(switchAddr string) (*Client, error) {
	ua, err := net.ResolveUDPAddr("udp", switchAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve switch addr: %w", err)
	}
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: ua.IP})
	if err != nil {
		return nil, fmt.Errorf("transport: client socket: %w", err)
	}
	c := &Client{
		conn:          conn,
		switchAddr:    ua,
		waiters:       make(map[pendKey]chan wire.Header),
		closed:        make(chan struct{}),
		RetryInterval: time.Second,
	}
	// Transaction IDs identify a request end to end: grants for queued
	// requests are routed back by (lock, txn). Clients draw from disjoint
	// random ranges so concurrent clients cannot collide.
	c.nextTxn = rand.Uint64() >> 1
	c.wg.Add(1)
	go c.readLoop()
	return c, nil
}

// Close stops the client; blocked Acquire calls fail.
func (c *Client) Close() error {
	select {
	case <-c.closed:
		return nil
	default:
	}
	close(c.closed)
	err := c.conn.Close()
	c.wg.Wait()
	c.mu.Lock()
	for k, ch := range c.waiters {
		close(ch)
		delete(c.waiters, k)
	}
	c.mu.Unlock()
	return err
}

func (c *Client) readLoop() {
	defer c.wg.Done()
	buf := make([]byte, maxPacket)
	var h wire.Header
	for {
		n, _, err := c.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-c.closed:
				return
			default:
				continue
			}
		}
		if err := h.DecodeFromBytes(buf[:n]); err != nil {
			continue
		}
		c.mu.Lock()
		key := pendKey{h.LockID, h.TxnID}
		if ch, ok := c.waiters[key]; ok {
			delete(c.waiters, key)
			ch <- h
		}
		c.mu.Unlock()
	}
}

// Grant is a lock held through a Client.
type Grant struct {
	c        *Client
	hdr      wire.Header
	released sync.Once
}

// Release releases the lock (fire-and-forget, as in the paper).
func (g *Grant) Release() {
	g.released.Do(func() {
		h := g.hdr
		h.Op = wire.OpRelease
		var buf [wire.HeaderLen]byte
		g.c.conn.WriteToUDP(h.AppendTo(buf[:0]), g.c.switchAddr)
	})
}

// Acquire requests a lock and blocks until granted, the context is
// cancelled, or the client closes. Unanswered requests are retransmitted
// every RetryInterval. The option set (tenant, priority, lease) is shared
// with the embedded netlock.Manager, as are the failure sentinels: errors
// match netlock.ErrClosed, netlock.ErrQuotaExceeded,
// netlock.ErrQueueOverflow, and — when the context's deadline expired —
// netlock.ErrTimeout alongside context.DeadlineExceeded.
func (c *Client) Acquire(ctx context.Context, lockID uint32, mode netlock.Mode, opts ...netlock.AcquireOption) (*Grant, error) {
	o := netlock.ResolveAcquireOptions(opts...)
	wm := wire.Shared
	if mode == netlock.Exclusive {
		wm = wire.Exclusive
	}
	c.mu.Lock()
	c.nextTxn++
	txn := c.nextTxn
	local := c.conn.LocalAddr().(*net.UDPAddr)
	h := wire.Header{
		Op:       wire.OpAcquire,
		Mode:     wm,
		LockID:   lockID,
		TxnID:    txn,
		TenantID: o.Tenant,
		Priority: o.Priority,
		LeaseNs:  int64(o.Lease),
	}
	if ip4 := local.IP.To4(); ip4 != nil {
		h.ClientIP, _ = netipAddrFrom4(ip4)
	}
	ch := make(chan wire.Header, 1)
	key := pendKey{lockID, txn}
	c.waiters[key] = ch
	c.mu.Unlock()

	var bufArr [wire.HeaderLen]byte
	buf := h.AppendTo(bufArr[:0])
	if _, err := c.conn.WriteToUDP(buf, c.switchAddr); err != nil {
		c.mu.Lock()
		delete(c.waiters, key)
		c.mu.Unlock()
		select {
		case <-c.closed:
			return nil, fmt.Errorf("transport: acquire lock %d: %w", lockID, netlock.ErrClosed)
		default:
		}
		return nil, fmt.Errorf("transport: send acquire: %w", err)
	}
	retry := time.NewTicker(c.RetryInterval)
	defer retry.Stop()
	for {
		select {
		case g, ok := <-ch:
			if !ok {
				return nil, fmt.Errorf("transport: acquire lock %d: %w", lockID, netlock.ErrClosed)
			}
			if g.Op == wire.OpReject {
				if g.Flags&wire.FlagOverflow != 0 {
					return nil, fmt.Errorf("transport: acquire lock %d: %w", lockID, netlock.ErrQueueOverflow)
				}
				return nil, fmt.Errorf("transport: acquire lock %d: %w", lockID, netlock.ErrQuotaExceeded)
			}
			return &Grant{c: c, hdr: h}, nil
		case <-retry.C:
			c.conn.WriteToUDP(buf, c.switchAddr)
		case <-ctx.Done():
			c.mu.Lock()
			delete(c.waiters, key)
			c.mu.Unlock()
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				return nil, fmt.Errorf("transport: acquire lock %d: %w (%w)", lockID, netlock.ErrTimeout, ctx.Err())
			}
			return nil, fmt.Errorf("transport: acquire lock %d: %w", lockID, ctx.Err())
		case <-c.closed:
			return nil, fmt.Errorf("transport: acquire lock %d: %w", lockID, netlock.ErrClosed)
		}
	}
}

// AcquireTimeout requests a lock with a plain timeout.
//
// Deprecated: use Acquire with a context and the shared netlock option set;
// this shim will be removed after one release.
func (c *Client) AcquireTimeout(lockID uint32, mode wire.Mode, timeout time.Duration) (*Grant, error) {
	nm := netlock.Shared
	if mode == wire.Exclusive {
		nm = netlock.Exclusive
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return c.Acquire(ctx, lockID, nm)
}

// netipAddrFrom4 converts a 4-byte IP into the wire address type.
func netipAddrFrom4(ip4 []byte) (a netip.Addr, ok bool) {
	var b [4]byte
	copy(b[:], ip4)
	return netip.AddrFrom4(b), true
}
