package transport

import (
	"context"
	"runtime"
	"testing"
	"time"

	"netlock"
	"netlock/internal/switchdp"
	"netlock/internal/wire"
)

// TestFabricClientSteadyStateAllocs gates the fabric-mode hot path the same
// way TestClientSteadyStateAllocs gates single-rack mode: with the shard
// map stable and the pools warm, a batched acquire/release round trip that
// routes through the map to a rack must not allocate on the client side.
// The per-rack batch writers, the rack attribution lookup, and Grant.Rack
// all ride the same 2 allocs/op noise budget.
func TestFabricClientSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc gate skipped in -short")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))

	m, err := wire.NewShardMap(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	sws, servers := fabric(t, 2, m)
	// One switch-resident lock per rack so the measured round trip is one
	// RTT with no server hop on either rack.
	locks := make([]uint32, len(sws))
	for i, sw := range sws {
		locks[i] = lockOnRack(t, m, i)
		if err := InstallSwitchLock(sw, servers[i], locks[i], []switchdp.Region{{Left: 0, Right: 8}}); err != nil {
			t.Fatal(err)
		}
	}

	racks := make([][]string, len(sws))
	for i, sw := range sws {
		racks[i] = []string{sw.Addr()}
	}
	c, err := NewClientConfig(ClientConfig{
		Fabric: &FabricClientConfig{Racks: racks, Map: m},
		// Park the retry and flush tickers: a retransmit mid-measurement
		// would be a (legitimate) extra send, not steady state.
		RetryInterval: time.Hour,
		FlushInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	ctx := context.Background()
	i := 0
	op := func() {
		lock := locks[i%len(locks)] // alternate racks so both paths stay hot
		i++
		g, err := c.Acquire(ctx, lock, netlock.Exclusive)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.ReleaseWait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	for n := 0; n < 200; n++ { // warm pools, maps, and the egress free list
		op()
	}
	if avg := testing.AllocsPerRun(500, op); avg > 2 {
		t.Fatalf("fabric steady-state acquire/release allocates %.2f/op, want <= 2", avg)
	}
}
