package transport

import (
	"fmt"
	"time"

	"netlock/internal/lockserver"
	"netlock/internal/sharedqueue"
	"netlock/internal/switchdp"
	"netlock/internal/wire"
)

// Live region moves over the chain. A move transfers a lock's occupied
// queue state between the switch chain and a lock server without draining.
// The state crossing the switch boundary must change residency at the SAME
// position in every member's op stream — direct per-member control calls
// would land at different positions, after which one member enqueues an
// acquire the other forwards, and the replicas diverge. So moves ride the
// stream itself as wire.OpMigrate records:
//
//	demote:  [MigDemote]                       — each member exports+evicts
//	                                             deterministically; the head
//	                                             hands its export to the
//	                                             caller, who installs it at
//	                                             the server.
//	promote: [MigBegin, MigRegion×banks,       — each member stages records
//	          MigEntry×n, MigCommit]             and imports at the commit.
//
// The promote stream is sequenced under one lock hold, so no other op
// interleaves with it at the head; members apply in sequence order, so no
// op interleaves anywhere else either. In-flight requests that reach the
// wrong side mid-move bounce (server ActPush ↔ switch forward) until the
// new owner is live — the controller primes the destination server first so
// the bounce path, not first-contact adoption, handles the race.

// migStaging accumulates one promote's records between begin and commit.
type migStaging struct {
	regions []switchdp.Region
	slots   [][]sharedqueue.Slot
	count   int
}

// applyMigrate applies one sequenced migrate record to this member. Part of
// the replicated apply path: every member executes it identically. Caller
// holds s.mu.
func (s *Switch) applyMigrate(h *wire.Header) {
	rec, err := wire.ParseMigrate(h)
	if err != nil {
		// A malformed record was sequenced — a head-side bug, not peer skew.
		// Applying nothing keeps members identical (they all parse the same
		// bytes); surface the error to the head-side caller.
		s.migErr = err
		return
	}
	switch rec.Kind {
	case wire.MigDemote:
		ex, err := s.dp.CtrlExportLock(rec.LockID)
		s.migErr = err
		if err == nil {
			s.migDemoted = &ex
		}
	case wire.MigBegin:
		banks := s.dp.Banks()
		s.migStage[rec.LockID] = &migStaging{
			regions: make([]switchdp.Region, banks),
			slots:   make([][]sharedqueue.Slot, banks),
		}
	case wire.MigRegion:
		st := s.migStage[rec.LockID]
		if st == nil || int(rec.Bank) >= len(st.regions) {
			s.migErr = fmt.Errorf("transport: stray migrate region for lock %d", rec.LockID)
			return
		}
		st.regions[rec.Bank] = switchdp.Region{Left: uint64(rec.Left), Right: uint64(rec.Right)}
	case wire.MigEntry:
		st := s.migStage[rec.Entry.LockID]
		if st == nil {
			s.migErr = fmt.Errorf("transport: stray migrate entry for lock %d", rec.Entry.LockID)
			return
		}
		b := int(rec.Entry.Priority)
		if b >= len(st.slots) {
			b = len(st.slots) - 1
		}
		st.slots[b] = append(st.slots[b], switchdp.SlotFromEntry(rec.Entry, rec.Entry.LeaseNs, rec.Granted, b))
		st.count++
	case wire.MigCommit:
		st := s.migStage[rec.LockID]
		delete(s.migStage, rec.LockID)
		if st == nil {
			s.migErr = fmt.Errorf("transport: migrate commit without begin for lock %d", rec.LockID)
			return
		}
		if st.count != int(rec.Count) {
			s.migErr = fmt.Errorf("transport: migrate commit count %d, staged %d", rec.Count, st.count)
			return
		}
		if err := s.dp.CtrlImportLock(rec.LockID, st.regions, st.slots); err != nil {
			// The head validated capacity before sequencing, so a failure
			// here means replicas disagree about data-plane state — the one
			// condition the chain cannot survive silently.
			panic(fmt.Sprintf("transport: migrate import of lock %d diverged: %v", rec.LockID, err))
		}
		s.migErr = nil
	}
}

// chainCommitWait bounds how long a migration entry point blocks for the
// tail's ack before returning anyway. Chain frames between in-process
// members land in microseconds and the 50ms heal re-sends anything
// dropped, so the bound is only reached when the fabric is already broken.
const chainCommitWait = 2 * time.Second

// waitChainCommitted blocks until the tail's applied-prefix ack covers seq
// — the head's log has pruned past it, so every chain member has applied
// the op and it survives any single-member failure. Ordinary client ops
// never need this: their effects become externally visible only at the
// tail. Migration records are different — the head-side entry points
// return state (a demote's export) or success (a promote) from the HEAD's
// local apply, and the controller acts on that immediately (installs the
// export at a server, records the placement). Replication down the chain
// is asynchronous, so without this fence a head killed right after a move
// takes the only applied copy of the migrate records with it: a lost
// promote leaves the lock owned by nobody (the server already exported,
// the survivors never imported — every acquire ping-pongs forever), a lost
// demote leaves it owned twice (survivors still resident while the server
// imports — double grants). The controller serializes moves and failure
// drills on one mutex, so once this returns the kill can no longer lose
// the move. Returns false on timeout or switch close; the move has still
// happened at the head, so callers proceed — the heal machinery converges
// unless the head itself dies inside the (already unhealthy) window.
func (s *Switch) waitChainCommitted(seq uint64) bool {
	deadline := time.Now().Add(chainCommitWait)
	for {
		s.mu.Lock()
		done := len(s.chain.log) == 0 || s.chain.log[0].Seq > seq
		s.mu.Unlock()
		if done {
			return true
		}
		select {
		case <-s.closed:
			return false
		default:
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// MigrateDemoteLock live-demotes a resident lock off the chain: a MigDemote
// record is sequenced, every member exports and evicts the lock at the same
// stream position, and the head's export is returned along with the head's
// clock (for lease rebasing at the destination server). Blocks until the
// record is tail-acked (see waitChainCommitted). Head only.
func (s *Switch) MigrateDemoteLock(lockID uint32) (switchdp.LockExport, int64, error) {
	s.mu.Lock()
	if !s.chain.head {
		s.mu.Unlock()
		return switchdp.LockExport{}, 0, fmt.Errorf("transport: demote on a non-head member")
	}
	if !s.dp.CtrlHasLock(lockID) {
		s.mu.Unlock()
		return switchdp.LockExport{}, 0, fmt.Errorf("transport: lock %d not switch-resident", lockID)
	}
	h := wire.MigrateDemote(lockID)
	s.migDemoted, s.migErr = nil, nil
	s.sequence(wire.OriginCtrl, &h)
	s.flushChain()
	if s.migErr != nil || s.migDemoted == nil {
		err := fmt.Errorf("transport: demote lock %d: %v", lockID, s.migErr)
		s.mu.Unlock()
		return switchdp.LockExport{}, 0, err
	}
	ex := *s.migDemoted
	s.migDemoted = nil
	nowNs := s.now()
	commitSeq := s.chain.seq
	s.mu.Unlock()
	s.waitChainCommitted(commitSeq)
	return ex, nowNs, nil
}

// MigratePromoteLock live-promotes a server-exported lock into the chain:
// the full state — regions per bank, then every queue entry with its
// granted bit — is sequenced as one uninterrupted run of migrate records,
// and every member installs it at the MigCommit. Entry leases must already
// be rebased to this head's clock (see NowNs). Blocks until the records
// are tail-acked (see waitChainCommitted); errors are only returned from
// validation before anything is sequenced, so a non-nil error always means
// no member changed state and the caller may roll back. Head only.
func (s *Switch) MigratePromoteLock(lockID uint32, regions []switchdp.Region, banks [][]lockserver.ExportEntry) error {
	s.mu.Lock()
	commitSeq, err := s.migratePromoteLocked(lockID, regions, banks)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	s.waitChainCommitted(commitSeq)
	return nil
}

func (s *Switch) migratePromoteLocked(lockID uint32, regions []switchdp.Region, banks [][]lockserver.ExportEntry) (uint64, error) {
	if !s.chain.head {
		return 0, fmt.Errorf("transport: promote on a non-head member")
	}
	if s.dp.CtrlHasLock(lockID) {
		return 0, fmt.Errorf("transport: lock %d already switch-resident", lockID)
	}
	if s.dp.CtrlFreeEntries() == 0 {
		return 0, fmt.Errorf("transport: lock table full")
	}
	if len(regions) != s.dp.Banks() {
		return 0, fmt.Errorf("transport: %d regions for %d banks", len(regions), s.dp.Banks())
	}
	count := 0
	for b := range banks {
		if b >= len(regions) {
			if len(banks[b]) > 0 {
				return 0, fmt.Errorf("transport: entries in bank %d beyond %d regions", b, len(regions))
			}
			continue
		}
		if uint64(len(banks[b])) > regions[b].Right-regions[b].Left {
			return 0, fmt.Errorf("transport: %d entries exceed region [%d,%d) in bank %d",
				len(banks[b]), regions[b].Left, regions[b].Right, b)
		}
		count += len(banks[b])
	}
	s.migErr = nil
	seq := func(h wire.Header) {
		s.sequence(wire.OriginCtrl, &h)
	}
	seq(wire.MigrateBegin(lockID, s.now()))
	for b, r := range regions {
		// Region bounds are slot indices into the switch queue memory,
		// always far below 2^32; the wire format carries them as uint32.
		seq(wire.MigrateRegionRec(lockID, uint8(b), uint32(r.Left), uint32(r.Right)))
	}
	for b := range banks {
		for i := range banks[b] {
			e := &banks[b][i]
			hdr := e.Hdr
			hdr.Priority = uint8(b)
			hdr.LeaseNs = e.LeaseNs
			seq(wire.MigrateEntry(&hdr, e.Granted))
		}
	}
	seq(wire.MigrateCommit(lockID, uint32(count)))
	s.flushChain()
	return s.chain.seq, s.migErr
}

// NowNs returns the switch's data-plane clock; migrating lease expiries are
// rebased between node clocks with it.
func (s *Switch) NowNs() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now()
}

// --- Lock-server node control surface for live moves ---

// PrepareImport stakes out the lock at this server ahead of a demote, so
// requests racing the move bounce instead of adopting the lock (see
// lockserver.CtrlPrepareImport).
func (s *Server) PrepareImport(lockID uint32) {
	s.mu.Lock()
	s.ls.CtrlPrepareImport(lockID)
	s.mu.Unlock()
}

// ExportLock exports this server's queue state for lockID, releasing
// ownership (lockserver.CtrlExportLock).
func (s *Server) ExportLock(lockID uint32) (lockserver.LockExport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ls.CtrlExportLock(lockID)
}

// ImportLock installs migrated queue state at this server and forwards the
// resulting overflow-replay grants through the switch like any other
// server output. Entry leases must already be rebased to this server's
// clock (see NowNs).
func (s *Server) ImportLock(lockID uint32, banks [][]lockserver.ExportEntry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	emits, err := s.ls.CtrlImportLock(lockID, banks)
	if err != nil {
		return err
	}
	sw := s.switchAddr
	if sw.IsValid() {
		for i := range emits {
			s.eg.send(&emits[i].Hdr, sw)
		}
		s.eg.flushAll()
	}
	return nil
}

// ExportOverflow removes and returns q2-buffered requests for a
// switch-resident lock (drain residue; lockserver.CtrlExportOverflow).
func (s *Server) ExportOverflow(lockID uint32) [][]wire.Header {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ls.CtrlExportOverflow(lockID)
}

// ImportOverflow appends migrated q2 requests at this server
// (lockserver.CtrlImportOverflow).
func (s *Server) ImportOverflow(lockID uint32, banks [][]wire.Header) {
	s.mu.Lock()
	s.ls.CtrlImportOverflow(lockID, banks)
	s.mu.Unlock()
}

// SetDraining flips the server's draining mode: while draining, requests
// for locks this server does not own are answered OpReject+FlagMoved so
// clients retry through the switch instead of parking state here.
func (s *Server) SetDraining(on bool) {
	s.mu.Lock()
	s.ls.CtrlSetDraining(on)
	s.mu.Unlock()
}

// OwnedLocks returns the locks this server currently owns.
func (s *Server) OwnedLocks() []uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ls.CtrlOwnedLocks()
}

// OverflowLocks returns switch-resident locks with q2 residue here.
func (s *Server) OverflowLocks() []uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ls.CtrlOverflowLocks()
}

// NowNs returns the server's data-plane clock for lease rebasing.
func (s *Server) NowNs() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ls.CtrlNow()
}
