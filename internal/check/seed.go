package check

import (
	"flag"
	"os"
	"strconv"
)

// seedFlag is the shared replay knob for every randomized test in the
// repository: `go test -netlock.seed=N` (or NETLOCK_SEED=N in the
// environment) pins the run to exactly one seed, reproducing a failure
// from the seed printed in its report. Unset, tests run their default
// seed sweep.
var seedFlag = flag.Int64("netlock.seed", 0, "replay randomized tests with exactly this seed (0 = default sweep; NETLOCK_SEED env var also accepted)")

// defaultSeeds is the sweep used when no replay seed is pinned. Fixed, not
// time-derived: runs are deterministic and failures always name their seed.
var defaultSeeds = []int64{1, 2, 3, 7, 42, 1234, 99991}

// ReplaySeed returns the pinned seed, if any: the -netlock.seed flag wins,
// then the NETLOCK_SEED environment variable.
func ReplaySeed() (int64, bool) {
	if *seedFlag != 0 {
		return *seedFlag, true
	}
	if v := os.Getenv("NETLOCK_SEED"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n != 0 {
			return n, true
		}
	}
	return 0, false
}

// Seeds returns the seeds a randomized test should run: the single pinned
// replay seed when one is set, else the default sweep.
func Seeds() []int64 {
	if s, ok := ReplaySeed(); ok {
		return []int64{s}
	}
	return append([]int64(nil), defaultSeeds...)
}

// SeedsN is Seeds truncated to at most n, for expensive tests that only
// want a couple of sweeps.
func SeedsN(n int) []int64 {
	s := Seeds()
	if len(s) > n {
		s = s[:n]
	}
	return s
}

// ReplayArgs renders the command-line fragment that replays a given seed,
// for inclusion in failure messages.
func ReplayArgs(seed int64) string {
	return "-netlock.seed=" + strconv.FormatInt(seed, 10)
}
