package check

import (
	"fmt"
	"sort"
)

// EventKind classifies one trace event. Acquire/Release are requests sent
// to the system under test; Grant/Reject are its observed actions.
type EventKind int

const (
	// EvAcquire records a lock request entering the system.
	EvAcquire EventKind = iota
	// EvGrant records the system granting a request.
	EvGrant
	// EvReject records the system rejecting a request outright.
	EvReject
	// EvRelease records a holder giving the lock back.
	EvRelease
	// EvLost marks a request as destroyed by a failure (switch wipe,
	// server loss). A lost request must never be granted afterwards.
	EvLost
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvAcquire:
		return "acquire"
	case EvGrant:
		return "grant"
	case EvReject:
		return "reject"
	case EvRelease:
		return "release"
	case EvLost:
		return "lost"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one entry of a (request, action) trace.
type Event struct {
	Kind EventKind
	Lock uint32
	Txn  uint64
	Excl bool
	Prio uint8
	// Seq is filled in by the checker: the event's position in the trace,
	// used in violation reports.
	Seq int
}

// String implements fmt.Stringer.
func (e Event) String() string {
	mode := "S"
	if e.Excl {
		mode = "X"
	}
	return fmt.Sprintf("#%d %s lock=%d txn=%d %s prio=%d", e.Seq, e.Kind, e.Lock, e.Txn, mode, e.Prio)
}

// Violation describes one safety-invariant breach, with the trace position
// where it was detected.
type Violation struct {
	Invariant string
	Event     Event
	Detail    string
}

// Error implements the error interface so violations flow through
// error-shaped plumbing.
func (v *Violation) Error() string {
	return fmt.Sprintf("invariant %q violated at %s: %s", v.Invariant, v.Event, v.Detail)
}

// traceReq is the checker's record of one in-flight request.
type traceReq struct {
	excl    bool
	prio    uint8
	arrival int // Seq of the EvAcquire
	granted bool
	lost    bool
}

// traceLock is the checker's per-lock view built purely from observed
// events — independent of the Model, so safety checking works on traces
// (overflow deferral, failover) where lockstep conformance does not hold.
type traceLock struct {
	waiting map[uint64]*traceReq
	granted map[uint64]*traceReq
}

// Checker consumes a trace and verifies the NetLock safety invariants:
//
//   - mutual exclusion: at most one exclusive holder, and no shared holder
//     coexists with it
//   - no phantom grants: every grant answers a pending acquire
//   - no duplicated grants: a request is granted at most once
//   - priority ordering: a grant never bypasses an exclusive request that
//     arrived earlier at the same or higher priority (shared grants), and
//     never bypasses any earlier conflicting request at a strictly higher
//     priority
//   - no grants after rejection or loss
//   - releases only from holders
//
// In Strict mode the checker additionally runs the reference Model in
// lockstep: every acquire computes the model's expected decision, every
// grant must be expected by the model, and EndStep reports grants the
// model issued that the system never delivered (lost grants). Strict mode
// is for single-threaded differential runs with no overflow buffering; for
// concurrent or failure-injected traces use safety-only mode, where
// liveness is checked separately by quiescence (Quiesce).
type Checker struct {
	// Strict enables lockstep conformance against Model.
	Strict bool
	// CheckPriority enables the priority-ordering invariant. It holds only
	// while every request is queued at one place: overflow buffering moves
	// exclusive requests out of the switch's nexcl counters (q2 at the
	// server), so a later shared request can be legally granted past them.
	// Traces that exercise the q1/q2 handoff disable it.
	CheckPriority bool
	model         *Model

	locks map[uint32]*traceLock
	reqs  map[reqKey]*traceReq
	seq   int

	// expect holds, in Strict mode, the grants the model says are due but
	// the system has not delivered yet within the current step.
	expect map[reqKey]bool

	grants   int
	rejects  int
	releases int
}

type reqKey struct {
	lock uint32
	txn  uint64
}

// NewChecker builds a safety-only checker.
func NewChecker() *Checker {
	return &Checker{
		CheckPriority: true,
		locks:         make(map[uint32]*traceLock),
		reqs:          make(map[reqKey]*traceReq),
	}
}

// NewStrictChecker builds a lockstep checker against a fresh model with the
// given number of priority banks.
func NewStrictChecker(prios int) *Checker {
	c := NewChecker()
	c.Strict = true
	c.model = NewModel(prios)
	c.expect = make(map[reqKey]bool)
	return c
}

// Model exposes the lockstep model (nil in safety-only mode); drivers use
// it to choose releasable heads.
func (c *Checker) Model() *Model { return c.model }

func (c *Checker) lock(id uint32) *traceLock {
	lo, ok := c.locks[id]
	if !ok {
		lo = &traceLock{waiting: make(map[uint64]*traceReq), granted: make(map[uint64]*traceReq)}
		c.locks[id] = lo
	}
	return lo
}

func (c *Checker) violate(inv string, e Event, format string, args ...any) *Violation {
	return &Violation{Invariant: inv, Event: e, Detail: fmt.Sprintf(format, args...)}
}

// Observe feeds one event to the checker and returns the first violation it
// causes, or nil. Once a violation is returned the checker state is
// undefined; callers stop at the first violation.
func (c *Checker) Observe(e Event) *Violation {
	e.Seq = c.seq
	c.seq++
	lo := c.lock(e.Lock)
	k := reqKey{e.Lock, e.Txn}
	switch e.Kind {
	case EvAcquire:
		if _, dup := c.reqs[k]; dup {
			return c.violate("unique-txn", e, "transaction %d already has a pending or granted request on lock %d", e.Txn, e.Lock)
		}
		r := &traceReq{excl: e.Excl, prio: e.Prio, arrival: e.Seq}
		c.reqs[k] = r
		lo.waiting[e.Txn] = r
		if c.Strict {
			if c.model.Acquire(e.Lock, e.Txn, e.Excl, e.Prio) {
				c.expect[k] = true
			}
		}
	case EvGrant:
		r, ok := c.reqs[k]
		if !ok {
			return c.violate("no-phantom-grant", e, "grant for a transaction with no pending acquire")
		}
		if r.granted {
			return c.violate("no-duplicate-grant", e, "transaction granted twice")
		}
		if r.lost {
			return c.violate("no-grant-after-loss", e, "transaction was lost to a failure at #%d", r.arrival)
		}
		if _, waits := lo.waiting[e.Txn]; !waits {
			return c.violate("no-grant-after-reject", e, "transaction is not waiting (rejected or released)")
		}
		// Mutual exclusion against current holders.
		for txn, h := range lo.granted {
			if h.excl {
				return c.violate("mutual-exclusion", e, "lock %d already held exclusively by txn %d", e.Lock, txn)
			}
			if r.excl {
				return c.violate("no-shared-exclusive-cogrant", e, "exclusive grant while txn %d holds shared", txn)
			}
		}
		// Priority ordering: the grant must not bypass an earlier
		// conflicting request.
		for txn, w := range lo.waiting {
			if !c.CheckPriority {
				break
			}
			if txn == e.Txn || w.arrival >= r.arrival {
				continue
			}
			conflict := w.excl || r.excl
			if !conflict {
				continue
			}
			if w.prio < r.prio || (w.prio == r.prio && w.excl) {
				return c.violate("priority-order", e, "bypasses earlier conflicting txn %d (prio %d, excl=%v, arrived #%d)", txn, w.prio, w.excl, w.arrival)
			}
		}
		if c.Strict && !c.expect[k] {
			return c.violate("model-conformance", e, "model did not grant this request")
		}
		delete(c.expect, k)
		r.granted = true
		delete(lo.waiting, e.Txn)
		lo.granted[e.Txn] = r
		c.grants++
	case EvReject:
		r, ok := c.reqs[k]
		if !ok {
			return c.violate("no-phantom-reject", e, "reject for a transaction with no pending acquire")
		}
		if r.granted {
			return c.violate("no-reject-after-grant", e, "transaction already granted")
		}
		delete(lo.waiting, e.Txn)
		delete(c.reqs, k)
		delete(c.expect, k)
		c.rejects++
	case EvRelease:
		r, ok := c.reqs[k]
		if !ok || !r.granted {
			return c.violate("release-holders-only", e, "release from a transaction that does not hold the lock")
		}
		delete(lo.granted, e.Txn)
		delete(c.reqs, k)
		c.releases++
		if c.Strict {
			granted, modelOK := c.model.Release(e.Lock, e.Prio)
			if !modelOK {
				return c.violate("model-conformance", e, "model has no granted head in bank %d of lock %d", c.model.Bank(e.Prio), e.Lock)
			}
			for _, txn := range granted {
				c.expect[reqKey{e.Lock, txn}] = true
			}
		}
	case EvLost:
		if r, ok := c.reqs[k]; ok {
			r.lost = true
			delete(lo.waiting, e.Txn)
			delete(lo.granted, e.Txn)
		}
	default:
		return c.violate("known-event", e, "unknown event kind %d", int(e.Kind))
	}
	return nil
}

// EndStep verifies, in Strict mode, that every grant the model issued in
// the step just finished was delivered by the system — catching lost
// grants, which pure safety checking cannot see. Call it after the system
// settles between operations.
func (c *Checker) EndStep() *Violation {
	if !c.Strict {
		return nil
	}
	for k := range c.expect {
		e := Event{Kind: EvGrant, Lock: k.lock, Txn: k.txn, Seq: c.seq}
		if r, ok := c.reqs[k]; ok {
			e.Excl, e.Prio = r.excl, r.prio
		}
		return c.violate("no-lost-grant", e, "model granted this request but the system never did")
	}
	return nil
}

// Quiesce verifies conservation once all traffic has drained: every
// request ever admitted ended granted-then-released, rejected, or lost —
// nothing is stuck waiting and no grant went unreleased. Call it only
// after the driver has released all holders and the system is idle.
func (c *Checker) Quiesce() *Violation {
	for k, r := range c.reqs {
		if r.lost {
			continue
		}
		e := Event{Kind: EvAcquire, Lock: k.lock, Txn: k.txn, Excl: r.excl, Prio: r.prio, Seq: c.seq}
		if r.granted {
			return c.violate("conservation", e, "transaction still holds the lock at quiescence")
		}
		return c.violate("conservation", e, "transaction still waiting at quiescence (lost request)")
	}
	return nil
}

// Stats reports how much the trace exercised the checker — tests use it to
// assert the run was not vacuous.
func (c *Checker) Stats() (grants, rejects, releases int) {
	return c.grants, c.rejects, c.releases
}

// Holders returns the transactions currently holding each lock according
// to the trace, sorted per lock. Failover drivers snapshot it around a
// fault to assert granted locks survive the reconfiguration, and at the
// end of a run to assert every grant was handed back.
func (c *Checker) Holders() map[uint32][]uint64 {
	out := make(map[uint32][]uint64)
	for id, lo := range c.locks {
		if len(lo.granted) == 0 {
			continue
		}
		txns := make([]uint64, 0, len(lo.granted))
		for txn := range lo.granted {
			txns = append(txns, txn)
		}
		sort.Slice(txns, func(i, j int) bool { return txns[i] < txns[j] })
		out[id] = txns
	}
	return out
}
