package check

import "testing"

func TestModelSharedCoexist(t *testing.T) {
	m := NewModel(2)
	if !m.Acquire(1, 1, false, 0) {
		t.Fatal("first shared must be granted")
	}
	if !m.Acquire(1, 2, false, 1) {
		t.Fatal("second shared must be granted (no exclusive anywhere)")
	}
	if n, x := m.Held(1); n != 2 || x {
		t.Fatalf("held = (%d, %v), want (2, false)", n, x)
	}
}

func TestModelExclusiveBlocks(t *testing.T) {
	m := NewModel(2)
	if !m.Acquire(1, 1, true, 0) {
		t.Fatal("first exclusive must be granted")
	}
	if m.Acquire(1, 2, false, 0) {
		t.Fatal("shared behind exclusive holder must wait")
	}
	if m.Acquire(1, 3, true, 0) {
		t.Fatal("exclusive behind exclusive holder must wait")
	}
	granted, ok := m.Release(1, 0)
	if !ok {
		t.Fatal("release of granted head must succeed")
	}
	// txn 2 (shared) is the new head; the walk stops at txn 3 (exclusive).
	if len(granted) != 1 || granted[0] != 2 {
		t.Fatalf("granted = %v, want [2]", granted)
	}
}

func TestModelSharedBlockedByWaitingExclSameOrHigherPrio(t *testing.T) {
	m := NewModel(4)
	m.Acquire(1, 1, false, 2) // shared holder
	if m.Acquire(1, 2, true, 1) {
		t.Fatal("exclusive must wait behind shared holder")
	}
	// Shared at lower priority (numerically higher) than the waiting
	// exclusive: its arrival scan covers banks 0..3, which includes the
	// waiting exclusive in bank 1, so it must wait too.
	if m.Acquire(1, 3, false, 3) {
		t.Fatal("shared at lower priority than a waiting exclusive must wait")
	}
	// Shared at same priority as the waiting exclusive: blocked.
	if m.Acquire(1, 4, false, 1) {
		t.Fatal("shared at same priority as waiting exclusive must wait")
	}
	// Shared at strictly higher priority than the waiting exclusive: its
	// scan covers banks 0..0 only, so the bank-1 exclusive does not block
	// it (matches the switch's nexcl counter scan).
	if !m.Acquire(1, 5, false, 0) {
		t.Fatal("shared at strictly higher priority than the waiting exclusive is granted")
	}
}

// TestModelSharedBlockedByWaitingSameBank pins the FIFO-alignment grant
// condition: a shared request whose own bank holds a waiting entry must wait
// too, even when no exclusive request blocks it, so that grants stay a FIFO
// prefix of the bank and head-dequeue releases stay aligned. The scenario is
// the shortest reproduction of a real bug this harness found (see
// MutIgnoreBankFifo).
func TestModelSharedBlockedByWaitingSameBank(t *testing.T) {
	m := NewModel(4)
	m.Acquire(1, 1, false, 2) // S2 granted
	m.Acquire(1, 2, true, 2)  // X2 waits
	if g, ok := m.Release(1, 2); !ok || len(g) != 1 || g[0] != 2 {
		t.Fatalf("release: granted %v (ok=%v), want [2]", g, ok)
	}
	m.Acquire(1, 3, false, 0) // S0 waits behind exclusive holder
	m.Acquire(1, 4, false, 2) // S2 waits behind exclusive holder
	if g, ok := m.Release(1, 2); !ok || len(g) != 1 || g[0] != 3 {
		t.Fatalf("release: granted %v (ok=%v), want [3] (bank 0 wins the walk)", g, ok)
	}
	// txn 4 is waiting in bank 2; a new shared to bank 2 has no exclusive
	// anywhere to block it, but granting it would put a granted entry
	// behind a waiting one. It must wait.
	if m.Acquire(1, 5, false, 2) {
		t.Fatal("shared behind a waiting entry in its own bank must wait")
	}
	// Draining bank 0 frees the lock; the walk grants bank 2's whole run.
	if g, ok := m.Release(1, 0); !ok || len(g) != 2 || g[0] != 4 || g[1] != 5 {
		t.Fatalf("release: granted %v (ok=%v), want [4 5]", g, ok)
	}
	// Head-dequeue releases now drain cleanly.
	if _, ok := m.Release(1, 2); !ok {
		t.Fatal("release of granted head failed")
	}
	if _, ok := m.Release(1, 2); !ok {
		t.Fatal("release of granted head failed")
	}
	if m.Outstanding() != 0 {
		t.Fatalf("outstanding = %d, want 0", m.Outstanding())
	}
}

func TestModelReleasePromotesHighestPriorityBank(t *testing.T) {
	m := NewModel(4)
	m.Acquire(1, 1, true, 3)  // granted holder in lowest-priority bank
	m.Acquire(1, 2, true, 2)  // waits
	m.Acquire(1, 3, true, 0)  // waits, highest priority
	m.Acquire(1, 4, false, 0) // waits behind the exclusive
	granted, ok := m.Release(1, 3)
	if !ok || len(granted) != 1 || granted[0] != 3 {
		t.Fatalf("granted = %v (ok=%v), want [3]", granted, ok)
	}
	if n, x := m.Held(1); n != 1 || !x {
		t.Fatalf("held = (%d, %v), want (1, true)", n, x)
	}
}

func TestModelSharedRunGrant(t *testing.T) {
	m := NewModel(2)
	m.Acquire(1, 1, true, 0)
	m.Acquire(1, 2, false, 1)
	m.Acquire(1, 3, false, 1)
	m.Acquire(1, 4, true, 1)
	m.Acquire(1, 5, false, 1)
	granted, ok := m.Release(1, 0)
	if !ok {
		t.Fatal("release failed")
	}
	// Bank 1's head run: shared 2, 3; stops at exclusive 4.
	if len(granted) != 2 || granted[0] != 2 || granted[1] != 3 {
		t.Fatalf("granted = %v, want [2 3]", granted)
	}
}

func TestModelReleaseInvalid(t *testing.T) {
	m := NewModel(2)
	if _, ok := m.Release(1, 0); ok {
		t.Fatal("release on unknown lock must fail")
	}
	m.Acquire(1, 1, true, 0)
	m.Acquire(1, 2, true, 1)
	if _, ok := m.Release(1, 1); ok {
		t.Fatal("release of a waiting (not granted) head must fail")
	}
}

func TestModelReleasableHeadsDeterministic(t *testing.T) {
	m := NewModel(2)
	m.Acquire(2, 1, false, 1)
	m.Acquire(1, 2, false, 0)
	m.Acquire(3, 3, true, 0)
	heads := m.ReleasableHeads()
	want := []LockPrio{{1, 0}, {2, 1}, {3, 0}}
	if len(heads) != len(want) {
		t.Fatalf("heads = %v, want %v", heads, want)
	}
	for i := range want {
		if heads[i] != want[i] {
			t.Fatalf("heads = %v, want %v", heads, want)
		}
	}
}

func TestModelBankClamp(t *testing.T) {
	m := NewModel(2)
	if m.Bank(7) != 1 {
		t.Fatalf("Bank(7) = %d, want clamp to 1", m.Bank(7))
	}
	m.Acquire(1, 1, true, 200) // lands in bank 1
	if m.QueueLen(1, 1) != 1 {
		t.Fatal("clamped acquire must land in the last bank")
	}
}
