package check

import "testing"

// TestMutationSanity is the harness's own sanity check (ISSUE acceptance
// criterion): each deliberately broken model variant, run as the system
// under test, must be caught by the checker. If a mutation survives the
// sweep, the harness has a blind spot.
func TestMutationSanity(t *testing.T) {
	cases := []struct {
		name string
		mut  Mutation
		// invariants that may legitimately fire first for this bug
		want map[string]bool
	}{
		{
			name: "shared granted over waiting exclusive",
			mut:  MutSharedOverWaitingExcl,
			want: map[string]bool{"priority-order": true, "model-conformance": true},
		},
		{
			name: "shared granted over exclusive holder",
			mut:  MutSharedOverExclHolder,
			want: map[string]bool{"mutual-exclusion": true, "model-conformance": true},
		},
		{
			name: "release walk runs through exclusive",
			mut:  MutWalkThroughExcl,
			want: map[string]bool{
				"mutual-exclusion":            true,
				"no-shared-exclusive-cogrant": true,
				"model-conformance":           true,
			},
		},
		{
			name: "duplicated grant on release",
			mut:  MutDoubleGrant,
			want: map[string]bool{"no-duplicate-grant": true, "model-conformance": true},
		},
		{
			name: "shared granted behind waiting entry in own bank",
			mut:  MutIgnoreBankFifo,
			want: map[string]bool{"model-conformance": true},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := &Harness{
				Cfg: DefaultWorkloadCfg(),
				New: func() System { return NewModelSystem(DefaultWorkloadCfg().Priorities, tc.mut) },
			}
			caught := false
			for _, seed := range Seeds() {
				f := h.RunSeed(seed)
				if f == nil {
					continue
				}
				caught = true
				v, ok := f.Err.(*Violation)
				if !ok {
					t.Fatalf("seed %d: failure is not a Violation: %v", seed, f.Err)
				}
				if !tc.want[v.Invariant] {
					t.Fatalf("seed %d: caught by unexpected invariant %q: %v", seed, v.Invariant, v)
				}
				if len(f.Ops) == 0 || len(f.Ops) > len(GenOps(h.Cfg, seed)) {
					t.Fatalf("seed %d: shrunk ops length %d out of range", seed, len(f.Ops))
				}
			}
			if !caught {
				t.Fatalf("mutation %v survived every seed — the checker has a blind spot", tc.mut)
			}
		})
	}
}

// TestFaithfulModelPasses pins the other direction: the unmutated model,
// run as the system under test, conforms to itself on every seed. Any
// failure here is a bug in the harness, not in an implementation.
func TestFaithfulModelPasses(t *testing.T) {
	h := &Harness{
		Cfg: DefaultWorkloadCfg(),
		New: func() System { return NewModelSystem(DefaultWorkloadCfg().Priorities, NoMutation) },
	}
	h.Run(t)
}
