// Package check is the model-based verification harness for the NetLock
// lock specification (paper §4.2–§4.4): one sequential reference model of
// the grant/release semantics, one trace-checking engine that verifies
// safety invariants over recorded (request, action) event streams, and one
// randomized workload driver with deterministic seeds and failing-case
// shrinking.
//
// The package is deliberately dependency-free (standard library only) so
// that every implementation of the spec — the switch data plane
// (internal/switchdp), the lock servers (internal/lockserver), the combined
// manager (internal/core), the virtual-time testbed (internal/cluster), and
// the comparison baselines — can differentially test against the same model
// from its own test files without import cycles.
//
// The spec, in one paragraph: locks are shared/exclusive with FCFS order
// within each priority bank (0 = highest). A request is granted on arrival
// iff the lock is free, or it is shared, no exclusive request holds the
// lock, no exclusive request waits at the same or higher priority, and its
// own bank holds no waiting entry. The last condition keeps the granted
// requests a FIFO prefix of every bank — the alignment the head-dequeue
// release protocol depends on; with a single bank it is implied by the
// nexcl scan (a waiting shared always sits behind an exclusive), which is
// why Algorithm 2 in the paper does not state it. A release dequeues the
// head of the releaser's bank; if the lock becomes free, the head of the
// highest-priority non-empty bank is granted — and, if that head is
// shared, the following run of shared requests in the same bank with it.
package check

import "sort"

// Mutation selects a deliberately broken variant of the model, used to
// verify that the checker actually catches specification violations
// (mutation testing of the harness itself). Production code must always use
// NoMutation.
type Mutation int

const (
	// NoMutation is the faithful model.
	NoMutation Mutation = iota
	// MutSharedOverWaitingExcl grants shared requests even when an
	// exclusive request waits at the same or higher priority — the
	// writer-starvation bug Algorithm 2's nexcl counter exists to prevent.
	MutSharedOverWaitingExcl
	// MutSharedOverExclHolder grants shared requests while an exclusive
	// holder is present — a shared/exclusive co-grant.
	MutSharedOverExclHolder
	// MutWalkThroughExcl lets the release grant walk run past an exclusive
	// entry, granting requests behind it — a mutual-exclusion violation.
	MutWalkThroughExcl
	// MutDoubleGrant re-emits the grant of the queue head on every release
	// of a shared holder — a duplicated grant.
	MutDoubleGrant
	// MutIgnoreBankFifo grants shared requests behind a waiting entry in
	// their own bank, breaking the grants-are-a-FIFO-prefix alignment the
	// head-dequeue release protocol depends on. This reproduces a real bug
	// this harness found in the multi-bank generalization of Algorithm 2:
	// the holder's release then consumes the waiter's slot and a later
	// grant walk re-grants the holder's slot (a duplicate grant to a
	// transaction that already released).
	MutIgnoreBankFifo
)

// modelEntry is one queued request: waiting first, then granted, until its
// release dequeues it.
type modelEntry struct {
	txn     uint64
	excl    bool
	granted bool
}

// modelLock is the per-lock state: one FIFO queue per priority bank, the
// granted requests forming a prefix of each queue, plus the hold state.
type modelLock struct {
	queues [][]modelEntry
	held   int
	heldX  bool
}

// Model is the sequential reference implementation of the NetLock lock
// spec. It is unconstrained (plain Go data structures, no pipeline model)
// and therefore obviously correct by inspection; implementations are tested
// against it. The zero value is not usable; call NewModel.
type Model struct {
	prios int
	mut   Mutation
	locks map[uint32]*modelLock
}

// NewModel builds a model with the given number of priority banks
// (1 = plain FCFS).
func NewModel(prios int) *Model {
	return NewMutatedModel(prios, NoMutation)
}

// NewMutatedModel builds a deliberately broken model variant. Only the
// harness self-tests should use mutations other than NoMutation.
func NewMutatedModel(prios int, mut Mutation) *Model {
	if prios <= 0 {
		panic("check: need at least one priority bank")
	}
	return &Model{prios: prios, mut: mut, locks: make(map[uint32]*modelLock)}
}

// Priorities returns the number of priority banks.
func (m *Model) Priorities() int { return m.prios }

// Bank clamps a wire priority to a bank index, exactly as the
// implementations do.
func (m *Model) Bank(prio uint8) int {
	if int(prio) >= m.prios {
		return m.prios - 1
	}
	return int(prio)
}

func (m *Model) lock(id uint32) *modelLock {
	lo, ok := m.locks[id]
	if !ok {
		lo = &modelLock{queues: make([][]modelEntry, m.prios)}
		m.locks[id] = lo
	}
	return lo
}

// Acquire enqueues a request and returns whether it is granted on arrival.
func (m *Model) Acquire(lockID uint32, txn uint64, excl bool, prio uint8) bool {
	lo := m.lock(lockID)
	b := m.Bank(prio)
	granted := false
	switch {
	case lo.held == 0:
		granted = true
	case !lo.heldX && !excl:
		// Shared: granted unless an exclusive request waits at the same
		// or higher priority, or its own bank has a waiting entry (grants
		// must stay a FIFO prefix of each bank).
		granted = true
		if m.mut != MutSharedOverWaitingExcl {
			for p := 0; p <= b; p++ {
				for _, e := range lo.queues[p] {
					if e.excl {
						granted = false
					}
				}
			}
		}
		if m.mut != MutIgnoreBankFifo {
			for _, e := range lo.queues[b] {
				if !e.granted {
					granted = false
				}
			}
		}
	case lo.heldX && !excl && m.mut == MutSharedOverExclHolder:
		granted = true
	}
	lo.queues[b] = append(lo.queues[b], modelEntry{txn: txn, excl: excl, granted: granted})
	if granted {
		lo.held++
		lo.heldX = lo.heldX || excl
	}
	return granted
}

// Release dequeues the head of the given bank — the same
// head-not-transaction semantics as the switch data plane (§4.2: shared
// releases are commutative, only the head can be released) — and returns
// the transactions granted as a result. The head must be granted; releasing
// an empty or waiting head returns ok=false and changes nothing.
func (m *Model) Release(lockID uint32, prio uint8) (granted []uint64, ok bool) {
	lo, exists := m.locks[lockID]
	if !exists {
		return nil, false
	}
	b := m.Bank(prio)
	q := lo.queues[b]
	if len(q) == 0 || !q[0].granted {
		return nil, false
	}
	released := q[0]
	lo.queues[b] = q[1:]
	if lo.held > 0 {
		lo.held--
	}
	if m.mut == MutDoubleGrant && !released.excl && len(lo.queues[b]) > 0 && lo.queues[b][0].granted {
		// Broken variant: re-announce the new head's grant.
		granted = append(granted, lo.queues[b][0].txn)
	}
	if lo.held > 0 {
		return granted, true
	}
	lo.heldX = false
	// Lock free: grant the head of the highest-priority non-empty bank,
	// plus the run of shared requests behind a shared head.
	for p := 0; p < m.prios; p++ {
		q := lo.queues[p]
		if len(q) == 0 {
			continue
		}
		if q[0].excl {
			q[0].granted = true
			lo.held = 1
			lo.heldX = true
			return append(granted, q[0].txn), true
		}
		for i := range q {
			if q[i].excl {
				if m.mut != MutWalkThroughExcl {
					break
				}
				q[i].granted = true
				lo.held++
				lo.heldX = true
				granted = append(granted, q[i].txn)
				continue
			}
			q[i].granted = true
			lo.held++
			granted = append(granted, q[i].txn)
		}
		return granted, true
	}
	return granted, true
}

// Held returns the number of current holders and whether one of them is
// exclusive.
func (m *Model) Held(lockID uint32) (n int, excl bool) {
	lo, ok := m.locks[lockID]
	if !ok {
		return 0, false
	}
	return lo.held, lo.heldX
}

// QueueLen returns the queued population (waiting + granted) of one bank.
func (m *Model) QueueLen(lockID uint32, prio uint8) int {
	lo, ok := m.locks[lockID]
	if !ok {
		return 0
	}
	return len(lo.queues[m.Bank(prio)])
}

// Head returns the head entry of one bank.
func (m *Model) Head(lockID uint32, prio uint8) (txn uint64, granted, excl, ok bool) {
	lo, exists := m.locks[lockID]
	if !exists {
		return 0, false, false, false
	}
	q := lo.queues[m.Bank(prio)]
	if len(q) == 0 {
		return 0, false, false, false
	}
	return q[0].txn, q[0].granted, q[0].excl, true
}

// ReleasableHeads lists every (lock, bank) whose head is granted — the set
// of releases the spec permits — in deterministic order.
func (m *Model) ReleasableHeads() []LockPrio {
	var out []LockPrio
	for id, lo := range m.locks {
		for p := range lo.queues {
			if len(lo.queues[p]) > 0 && lo.queues[p][0].granted {
				out = append(out, LockPrio{Lock: id, Prio: uint8(p)})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Lock != out[j].Lock {
			return out[i].Lock < out[j].Lock
		}
		return out[i].Prio < out[j].Prio
	})
	return out
}

// LockPrio identifies one priority bank of one lock.
type LockPrio struct {
	Lock uint32
	Prio uint8
}

// Outstanding returns the total queued population across all locks.
func (m *Model) Outstanding() int {
	n := 0
	for _, lo := range m.locks {
		for p := range lo.queues {
			n += len(lo.queues[p])
		}
	}
	return n
}
