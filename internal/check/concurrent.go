package check

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

// The concurrent driver adds a concurrency dimension to the chaos suite:
// where the sequential driver (driver.go) checks a single-threaded op
// stream against the reference model, this one hammers a live lock manager
// from many goroutines and checks the safety property that survives an
// unknown interleaving — mutual exclusion.
//
// Ordering is reconstructed from a global atomic sequence counter: each
// goroutine stamps a tick after its acquire returns and another before it
// submits the release. The recorded [start, end] interval is therefore a
// subset of the true hold interval, so any overlap between a recorded
// exclusive interval and any other recorded interval on the same lock is a
// genuine violation (no false positives; some true races may go unobserved,
// which is the usual chaos-test trade-off).

// BlockingSystem is a live lock manager with a blocking acquire, as the
// concurrent driver's clients see it. Adapters in each package's tests map
// the real API (e.g. netlock.Manager.Acquire + Grant.Release) onto it.
type BlockingSystem interface {
	// Acquire blocks until the lock is held and returns the release
	// function for this hold.
	Acquire(lock uint32, excl bool, prio uint8) (release func(), err error)
}

// ConcurrentCfg shapes a concurrent chaos run.
type ConcurrentCfg struct {
	// Goroutines is the number of concurrent clients.
	Goroutines int
	// Ops is the number of acquire/release pairs per client.
	Ops int
	// Locks is the lock ID space: IDs 1..Locks. Small values force
	// contention; values above the shard count also exercise cross-shard
	// traffic.
	Locks int
	// Priorities is the number of priority levels requests draw from.
	Priorities int
	// PExclusive is the probability an acquire is exclusive.
	PExclusive float64
}

// DefaultConcurrentCfg is a contended mix over a handful of locks.
func DefaultConcurrentCfg() ConcurrentCfg {
	return ConcurrentCfg{
		Goroutines: 8,
		Ops:        150,
		Locks:      5,
		Priorities: 1,
		PExclusive: 0.5,
	}
}

// holdInterval is one observed lock hold, bracketed by global sequence
// ticks taken strictly inside the true hold window.
type holdInterval struct {
	lock       uint32
	excl       bool
	goroutine  int
	start, end uint64
}

// RunConcurrent drives sys from cfg.Goroutines concurrent clients seeded
// from seed and reports every mutual-exclusion violation observed in the
// reconstructed trace. Failures name the seed's replay flag.
func RunConcurrent(t *testing.T, sys BlockingSystem, cfg ConcurrentCfg, seed int64) {
	t.Helper()
	violations, err := ConcurrentViolations(sys, cfg, seed)
	if err != nil {
		t.Fatalf("concurrent chaos (replay: %s): %v", ReplayArgs(seed), err)
	}
	for _, v := range violations {
		t.Errorf("concurrent chaos (replay: %s): %s", ReplayArgs(seed), v)
	}
}

// ConcurrentViolations is RunConcurrent's engine, exposed so the driver
// can be self-tested against a deliberately broken system. It returns the
// mutual-exclusion violations found in the reconstructed trace.
func ConcurrentViolations(sys BlockingSystem, cfg ConcurrentCfg, seed int64) ([]string, error) {
	if cfg.Goroutines <= 0 || cfg.Ops <= 0 || cfg.Locks <= 0 {
		cfg = DefaultConcurrentCfg()
	}
	if cfg.Priorities <= 0 {
		cfg.Priorities = 1
	}
	var seq atomic.Uint64
	perG := make([][]holdInterval, cfg.Goroutines)
	errs := make([]error, cfg.Goroutines)
	var wg sync.WaitGroup
	for g := 0; g < cfg.Goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Distinct stream per goroutine, all derived from the run seed.
			rng := rand.New(rand.NewSource(seed + int64(g)*1_000_003))
			ivs := make([]holdInterval, 0, cfg.Ops)
			for op := 0; op < cfg.Ops; op++ {
				lock := uint32(rng.Intn(cfg.Locks) + 1)
				excl := rng.Float64() < cfg.PExclusive
				prio := uint8(rng.Intn(cfg.Priorities))
				release, err := sys.Acquire(lock, excl, prio)
				if err != nil {
					errs[g] = err
					return
				}
				start := seq.Add(1)
				// Yield inside the critical section so interleavings
				// actually happen even at GOMAXPROCS=1.
				runtime.Gosched()
				end := seq.Add(1)
				release()
				ivs = append(ivs, holdInterval{lock: lock, excl: excl, goroutine: g, start: start, end: end})
			}
			perG[g] = ivs
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	byLock := make(map[uint32][]holdInterval)
	for _, ivs := range perG {
		for _, iv := range ivs {
			byLock[iv.lock] = append(byLock[iv.lock], iv)
		}
	}
	var violations []string
	for _, ivs := range byLock {
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].start < ivs[j].start })
		for i := range ivs {
			// Sequence ticks are globally unique, so intervals sorted by
			// start overlap iff the later start precedes the earlier end.
			for j := i + 1; j < len(ivs) && ivs[j].start < ivs[i].end; j++ {
				if ivs[i].excl || ivs[j].excl {
					violations = append(violations, overlapMsg(ivs[i], ivs[j]))
				}
			}
		}
	}
	return violations, nil
}

func overlapMsg(a, b holdInterval) string {
	mode := func(excl bool) string {
		if excl {
			return "X"
		}
		return "S"
	}
	return fmt.Sprintf("lock %d: %s hold [%d,%d] by g%d overlaps %s hold [%d,%d] by g%d",
		a.lock, mode(a.excl), a.start, a.end, a.goroutine,
		mode(b.excl), b.start, b.end, b.goroutine)
}
