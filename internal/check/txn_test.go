package check

import (
	"strings"
	"testing"
)

// feedTxn plays a trace into a fresh TxnChecker (wrapping a safety-only
// per-lock Checker, priority checking off) and returns the first
// violation plus the checker for further assertions.
func feedTxn(t *testing.T, order bool, trace []Event) (*Violation, *TxnChecker) {
	t.Helper()
	inner := NewChecker()
	inner.CheckPriority = false
	tc := NewTxnChecker(inner)
	tc.CheckOrder = order
	for _, e := range trace {
		if v := tc.Observe(e); v != nil {
			return v, tc
		}
	}
	return nil, tc
}

func acq(lock uint32, txn uint64) Event { return Event{Kind: EvAcquire, Lock: lock, Txn: txn, Excl: true} }
func gnt(lock uint32, txn uint64) Event { return Event{Kind: EvGrant, Lock: lock, Txn: txn, Excl: true} }
func rel(lock uint32, txn uint64) Event { return Event{Kind: EvRelease, Lock: lock, Txn: txn, Excl: true} }

// TestTxnCheckerCleanInterleaving: two multi-lock transactions over
// disjoint locks, interleaved, each growing in order then shrinking —
// the clean 2PL shape must pass and count as completed.
func TestTxnCheckerCleanInterleaving(t *testing.T) {
	trace := []Event{
		acq(1, 100), gnt(1, 100),
		acq(10, 200), gnt(10, 200), // txn 200 interleaves
		acq(2, 100), gnt(2, 100),
		acq(11, 200), gnt(11, 200),
		acq(3, 100), gnt(3, 100),
		rel(3, 100), rel(1, 100), rel(2, 100), // shrink in any order
		rel(10, 200), rel(11, 200),
	}
	v, tc := feedTxn(t, true, trace)
	if v != nil {
		t.Fatalf("clean trace rejected: %v", v)
	}
	if v := tc.Quiesce(); v != nil {
		t.Fatalf("quiesce: %v", v)
	}
	if tc.Completed() != 2 {
		t.Fatalf("completed = %d, want 2", tc.Completed())
	}
}

// TestTxnCheckerMutations proves the checker actually catches each broken
// interleaving — the mutation test the satellite requires.
func TestTxnCheckerMutations(t *testing.T) {
	cases := []struct {
		name  string
		order bool
		trace []Event
		inv   string
	}{
		{
			name:  "acquire after release breaks two-phase",
			order: true,
			trace: []Event{
				acq(1, 7), gnt(1, 7),
				acq(2, 7), gnt(2, 7),
				rel(1, 7),
				acq(3, 7), // growing again after shrinking
			},
			inv: "two-phase",
		},
		{
			name:  "out-of-order acquisition",
			order: true,
			trace: []Event{
				acq(2, 7), gnt(2, 7),
				acq(1, 7), // descending lock order
			},
			inv: "ordered-acquisition",
		},
		{
			name:  "release while an acquire is in flight",
			order: true,
			trace: []Event{
				acq(1, 7), gnt(1, 7),
				acq(2, 7), // still pending
				rel(1, 7), // shrink before the lock set is complete
			},
			inv: "atomic-hold",
		},
		{
			name:  "release of a lock the txn never held",
			order: true,
			trace: []Event{
				acq(1, 7), gnt(1, 7), rel(1, 7),
				{Kind: EvRelease, Lock: 1, Txn: 9, Excl: true},
			},
			inv: "release-holders-only", // caught by the wrapped per-lock checker
		},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			v, _ := feedTxn(t, tt.order, tt.trace)
			if v == nil {
				t.Fatalf("mutation not caught")
			}
			if v.Invariant != tt.inv {
				t.Fatalf("caught %q, want %q (%v)", v.Invariant, tt.inv, v)
			}
		})
	}
}

// TestTxnCheckerOrderOptional: adversarial 2PL scenarios acquire out of
// order on purpose; with CheckOrder off the same trace must pass.
func TestTxnCheckerOrderOptional(t *testing.T) {
	trace := []Event{
		acq(2, 7), gnt(2, 7),
		acq(1, 7), gnt(1, 7),
		rel(2, 7), rel(1, 7),
	}
	v, tc := feedTxn(t, false, trace)
	if v != nil {
		t.Fatalf("unordered trace rejected with CheckOrder off: %v", v)
	}
	if v := tc.Quiesce(); v != nil {
		t.Fatalf("quiesce: %v", v)
	}
}

// TestTxnCheckerQuiesceCatchesStuckTxn: a transaction that never released
// everything must fail conservation.
func TestTxnCheckerQuiesceCatchesStuckTxn(t *testing.T) {
	v, tc := feedTxn(t, true, []Event{acq(1, 7), gnt(1, 7)})
	if v != nil {
		t.Fatalf("unexpected violation: %v", v)
	}
	qv := tc.Quiesce()
	if qv == nil || !strings.Contains(qv.Invariant, "conservation") {
		t.Fatalf("quiesce = %v, want a conservation violation", qv)
	}
}

// TestTxnCheckerLost: a lost grant ends the growing phase but does not
// count as a completed transaction, and quiesce accepts the remainder.
func TestTxnCheckerLost(t *testing.T) {
	trace := []Event{
		acq(1, 7), gnt(1, 7),
		acq(2, 7), gnt(2, 7),
		{Kind: EvLost, Lock: 1, Txn: 7, Excl: true},
		rel(2, 7),
	}
	v, tc := feedTxn(t, true, trace)
	if v != nil {
		t.Fatalf("lost-grant trace rejected: %v", v)
	}
	if v := tc.Quiesce(); v != nil {
		t.Fatalf("quiesce: %v", v)
	}
}
