package check

// ModelSystem adapts a Model (faithful or mutated) to the System
// interface. The harness's self-tests run the checker against mutated
// models to prove the invariants actually fire; a faithful ModelSystem
// must always pass (the model trivially conforms to itself).
type ModelSystem struct {
	M *Model
}

// NewModelSystem wraps a fresh model with the given mutation.
func NewModelSystem(prios int, mut Mutation) *ModelSystem {
	return &ModelSystem{M: NewMutatedModel(prios, mut)}
}

// Acquire implements System.
func (s *ModelSystem) Acquire(lock uint32, txn uint64, excl bool, prio uint8) []uint64 {
	if s.M.Acquire(lock, txn, excl, prio) {
		return []uint64{txn}
	}
	return nil
}

// Release implements System.
func (s *ModelSystem) Release(lock uint32, prio uint8, _ uint64) []uint64 {
	granted, _ := s.M.Release(lock, prio)
	return granted
}
