package check

// TxnChecker validates multi-lock transactions over the same Event stream
// the per-lock Checker consumes: every lock of one transaction shares a
// Txn (as cluster.TxnSpec execution and the scenario 2PL layer do), and
// the checker enforces the transaction-level discipline that the per-lock
// invariants cannot see:
//
//   - two-phase: once a transaction releases (or loses) any lock, it must
//     not issue another acquire — a growing phase strictly before a
//     shrinking phase
//   - atomic hold: a transaction must not start releasing while one of
//     its own acquires is still in flight; the full lock set is held
//     together before the shrink phase begins
//   - ordered acquisition (CheckOrder): lock IDs within a transaction are
//     acquired in strictly increasing order, the deadlock-freedom
//     discipline the cluster executor's LockOrderer sorting guarantees.
//     Adversarial 2PL scenarios that deliberately acquire out of order
//     disable it
//   - conservation at Quiesce: no transaction still holds or waits
//
// A TxnChecker optionally wraps an inner per-lock Checker so one Observe
// call feeds both; pass nil to check only the transaction discipline.
type TxnChecker struct {
	// CheckOrder enables the ordered-acquisition invariant.
	CheckOrder bool

	inner *Checker
	txns  map[uint64]*txnState
	seq   int
	done  int
}

type txnState struct {
	pending   int             // acquires not yet granted or rejected
	held      map[uint32]bool // locks granted and not yet released
	last      uint32          // highest lock ID acquired so far
	hasLast   bool
	shrinking bool // a release or loss has been observed
}

// NewTxnChecker builds a transaction checker around inner (which may be
// nil for txn-discipline-only checking).
func NewTxnChecker(inner *Checker) *TxnChecker {
	return &TxnChecker{
		CheckOrder: true,
		inner:      inner,
		txns:       make(map[uint64]*txnState),
	}
}

// Inner returns the wrapped per-lock checker, or nil.
func (tc *TxnChecker) Inner() *Checker { return tc.inner }

func (tc *TxnChecker) txn(id uint64) *txnState {
	s, ok := tc.txns[id]
	if !ok {
		s = &txnState{held: make(map[uint32]bool)}
		tc.txns[id] = s
	}
	return s
}

// Observe feeds one event through the per-lock checker (if any) and the
// transaction invariants, returning the first violation. As with Checker,
// state is undefined after a violation.
func (tc *TxnChecker) Observe(e Event) *Violation {
	if tc.inner != nil {
		if v := tc.inner.Observe(e); v != nil {
			return v
		}
	}
	e.Seq = tc.seq
	tc.seq++
	s := tc.txn(e.Txn)
	violate := func(inv, format string, args ...any) *Violation {
		return (&Checker{}).violate(inv, e, format, args...)
	}
	switch e.Kind {
	case EvAcquire:
		if s.shrinking {
			return violate("two-phase", "transaction %d acquires after starting its shrink phase", e.Txn)
		}
		if tc.CheckOrder && s.hasLast && e.Lock <= s.last {
			return violate("ordered-acquisition", "transaction %d acquires lock %d after lock %d", e.Txn, e.Lock, s.last)
		}
		s.pending++
		s.last, s.hasLast = e.Lock, true
	case EvGrant:
		if s.pending <= 0 {
			return violate("txn-grant-pending", "transaction %d granted with no acquire in flight", e.Txn)
		}
		s.pending--
		s.held[e.Lock] = true
	case EvReject:
		if s.pending > 0 {
			s.pending--
		}
	case EvRelease:
		if !s.held[e.Lock] {
			return violate("txn-release-held", "transaction %d releases lock %d it does not hold", e.Txn, e.Lock)
		}
		if s.pending > 0 {
			return violate("atomic-hold", "transaction %d releases lock %d while %d acquire(s) still in flight", e.Txn, e.Lock, s.pending)
		}
		s.shrinking = true
		delete(s.held, e.Lock)
		if len(s.held) == 0 {
			delete(tc.txns, e.Txn)
			tc.done++
		}
	case EvLost:
		// A failure may destroy the request or the grant; either way the
		// transaction cannot legally grow afterwards.
		s.shrinking = true
		delete(s.held, e.Lock)
		if s.pending > 0 {
			s.pending--
		}
		if len(s.held) == 0 && s.pending == 0 {
			delete(tc.txns, e.Txn)
		}
	}
	return nil
}

// Quiesce verifies transaction conservation once traffic has drained:
// every transaction released everything it was granted and has no acquire
// still in flight.
func (tc *TxnChecker) Quiesce() *Violation {
	if tc.inner != nil {
		if v := tc.inner.Quiesce(); v != nil {
			return v
		}
	}
	for id, s := range tc.txns {
		e := Event{Kind: EvAcquire, Txn: id, Seq: tc.seq}
		if len(s.held) > 0 {
			for lock := range s.held {
				e.Lock = lock
				break
			}
			return (&Checker{}).violate("txn-conservation", e, "transaction %d still holds %d lock(s) at quiescence", id, len(s.held))
		}
		if s.pending > 0 {
			return (&Checker{}).violate("txn-conservation", e, "transaction %d still has %d acquire(s) in flight at quiescence", id, s.pending)
		}
	}
	return nil
}

// Completed reports how many transactions ran to a full
// grow-hold-release cycle — tests use it to reject vacuous runs.
func (tc *TxnChecker) Completed() int { return tc.done }
