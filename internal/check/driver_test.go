package check

import (
	"testing"
)

func TestGenOpsDeterministic(t *testing.T) {
	cfg := DefaultWorkloadCfg()
	a := GenOps(cfg, 42)
	b := GenOps(cfg, 42)
	if len(a) != cfg.Ops || len(b) != cfg.Ops {
		t.Fatalf("generated %d/%d ops, want %d", len(a), len(b), cfg.Ops)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs between identical seeds: %v vs %v", i, a[i], b[i])
		}
	}
	c := GenOps(cfg, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds generated identical op streams")
	}
}

// brokenAfterN behaves faithfully for the first n acquires, then starts
// granting everything unconditionally — a bug that needs a long prefix to
// trigger, so shrinking has real work to do.
type brokenAfterN struct {
	inner *ModelSystem
	n     int
	seen  int
}

func (s *brokenAfterN) Acquire(lock uint32, txn uint64, excl bool, prio uint8) []uint64 {
	s.seen++
	if s.seen > s.n {
		// Unconditional grant, ignoring all queue state.
		s.inner.M.Acquire(lock, txn, excl, prio)
		return []uint64{txn}
	}
	return s.inner.Acquire(lock, txn, excl, prio)
}

func (s *brokenAfterN) Release(lock uint32, prio uint8, txn uint64) []uint64 {
	return s.inner.Release(lock, prio, txn)
}

func TestShrinkingReducesFailingRuns(t *testing.T) {
	cfg := DefaultWorkloadCfg()
	h := &Harness{
		Cfg: cfg,
		New: func() System {
			return &brokenAfterN{inner: NewModelSystem(cfg.Priorities, NoMutation), n: 5}
		},
	}
	f := h.RunSeed(1)
	if f == nil {
		t.Fatal("broken system passed")
	}
	if len(f.Ops) >= cfg.Ops/2 {
		t.Fatalf("shrinking left %d of %d ops — expected a substantial reduction", len(f.Ops), cfg.Ops)
	}
	// The shrunk stream must still reproduce the failure on a fresh system.
	if err := h.execute(f.Ops); err == nil {
		t.Fatal("shrunk op stream does not reproduce the failure")
	}
	// And the failure must carry the seed for replay.
	if f.Seed != 1 {
		t.Fatalf("failure seed = %d, want 1", f.Seed)
	}
}

func TestSeedsReplayPinning(t *testing.T) {
	t.Setenv("NETLOCK_SEED", "777")
	if s, ok := ReplaySeed(); !ok || s != 777 {
		t.Fatalf("ReplaySeed = (%d, %v), want (777, true)", s, ok)
	}
	seeds := Seeds()
	if len(seeds) != 1 || seeds[0] != 777 {
		t.Fatalf("Seeds = %v, want [777]", seeds)
	}
	t.Setenv("NETLOCK_SEED", "")
	if _, ok := ReplaySeed(); ok {
		t.Fatal("unset env must not pin a seed")
	}
	if len(Seeds()) < 3 {
		t.Fatalf("default sweep too small: %v", Seeds())
	}
	if n := len(SeedsN(2)); n != 2 {
		t.Fatalf("SeedsN(2) returned %d seeds", n)
	}
}
