package check

import (
	"sync"
	"testing"
)

// rwSystem is a trivially correct lock manager: one RWMutex per lock.
type rwSystem struct {
	mu    sync.Mutex
	locks map[uint32]*sync.RWMutex
}

func (s *rwSystem) get(lock uint32) *sync.RWMutex {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.locks == nil {
		s.locks = make(map[uint32]*sync.RWMutex)
	}
	l, ok := s.locks[lock]
	if !ok {
		l = new(sync.RWMutex)
		s.locks[lock] = l
	}
	return l
}

func (s *rwSystem) Acquire(lock uint32, excl bool, _ uint8) (func(), error) {
	l := s.get(lock)
	if excl {
		l.Lock()
		return l.Unlock, nil
	}
	l.RLock()
	return l.RUnlock, nil
}

// brokenSystem grants every request immediately: no mutual exclusion at all.
type brokenSystem struct{}

func (brokenSystem) Acquire(uint32, bool, uint8) (func(), error) { return func() {}, nil }

// A correct implementation must come out clean.
func TestConcurrentDriverPassesCorrectSystem(t *testing.T) {
	for _, seed := range SeedsN(3) {
		RunConcurrent(t, &rwSystem{}, DefaultConcurrentCfg(), seed)
	}
}

// The driver must actually detect violations: a system with no locking at
// all has to produce overlapping exclusive holds under contention.
func TestConcurrentDriverCatchesBrokenSystem(t *testing.T) {
	total := 0
	for _, seed := range SeedsN(3) {
		violations, err := ConcurrentViolations(brokenSystem{}, DefaultConcurrentCfg(), seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		total += len(violations)
	}
	if total == 0 {
		t.Fatal("no-op lock system produced zero mutual-exclusion violations; the concurrent driver is blind")
	}
}
