package check

import (
	"strings"
	"testing"
)

// feed pushes events until one violates; returns the violation.
func feed(t *testing.T, c *Checker, events ...Event) *Violation {
	t.Helper()
	for _, e := range events {
		if v := c.Observe(e); v != nil {
			return v
		}
	}
	return nil
}

func wantViolation(t *testing.T, v *Violation, invariant string) {
	t.Helper()
	if v == nil {
		t.Fatalf("expected %q violation, trace accepted", invariant)
	}
	if v.Invariant != invariant {
		t.Fatalf("violation = %v, want invariant %q", v, invariant)
	}
	if !strings.Contains(v.Error(), invariant) {
		t.Fatalf("Error() = %q does not name the invariant", v.Error())
	}
}

func TestCheckerCleanTrace(t *testing.T) {
	c := NewChecker()
	v := feed(t, c,
		Event{Kind: EvAcquire, Lock: 1, Txn: 1, Excl: true},
		Event{Kind: EvGrant, Lock: 1, Txn: 1},
		Event{Kind: EvAcquire, Lock: 1, Txn: 2, Excl: false},
		Event{Kind: EvRelease, Lock: 1, Txn: 1},
		Event{Kind: EvGrant, Lock: 1, Txn: 2},
		Event{Kind: EvRelease, Lock: 1, Txn: 2},
	)
	if v != nil {
		t.Fatalf("clean trace rejected: %v", v)
	}
	if v := c.Quiesce(); v != nil {
		t.Fatalf("quiesce on drained trace: %v", v)
	}
	g, r, rel := c.Stats()
	if g != 2 || r != 0 || rel != 2 {
		t.Fatalf("stats = (%d, %d, %d), want (2, 0, 2)", g, r, rel)
	}
}

func TestCheckerMutualExclusion(t *testing.T) {
	c := NewChecker()
	v := feed(t, c,
		Event{Kind: EvAcquire, Lock: 1, Txn: 1, Excl: true},
		Event{Kind: EvGrant, Lock: 1, Txn: 1},
		Event{Kind: EvAcquire, Lock: 1, Txn: 2, Excl: true},
		Event{Kind: EvGrant, Lock: 1, Txn: 2},
	)
	wantViolation(t, v, "mutual-exclusion")
}

func TestCheckerSharedExclusiveCoGrant(t *testing.T) {
	c := NewChecker()
	v := feed(t, c,
		Event{Kind: EvAcquire, Lock: 1, Txn: 1, Excl: false},
		Event{Kind: EvGrant, Lock: 1, Txn: 1},
		Event{Kind: EvAcquire, Lock: 1, Txn: 2, Excl: true},
		Event{Kind: EvGrant, Lock: 1, Txn: 2},
	)
	wantViolation(t, v, "no-shared-exclusive-cogrant")
}

func TestCheckerPhantomAndDuplicateGrant(t *testing.T) {
	c := NewChecker()
	wantViolation(t, feed(t, c, Event{Kind: EvGrant, Lock: 1, Txn: 9}), "no-phantom-grant")

	c = NewChecker()
	v := feed(t, c,
		Event{Kind: EvAcquire, Lock: 1, Txn: 1, Excl: false},
		Event{Kind: EvGrant, Lock: 1, Txn: 1},
		Event{Kind: EvGrant, Lock: 1, Txn: 1},
	)
	wantViolation(t, v, "no-duplicate-grant")
}

func TestCheckerPriorityOrder(t *testing.T) {
	c := NewChecker()
	v := feed(t, c,
		Event{Kind: EvAcquire, Lock: 1, Txn: 1, Excl: false, Prio: 1},
		Event{Kind: EvGrant, Lock: 1, Txn: 1},
		// Exclusive waits at priority 0...
		Event{Kind: EvAcquire, Lock: 1, Txn: 2, Excl: true, Prio: 0},
		// ...and a later shared at priority 1 is granted past it.
		Event{Kind: EvAcquire, Lock: 1, Txn: 3, Excl: false, Prio: 1},
		Event{Kind: EvGrant, Lock: 1, Txn: 3},
	)
	wantViolation(t, v, "priority-order")

	// The same trace is accepted when priority checking is off (overflow
	// traces legitimately reorder across the q1/q2 handoff).
	c = NewChecker()
	c.CheckPriority = false
	v = feed(t, c,
		Event{Kind: EvAcquire, Lock: 1, Txn: 1, Excl: false, Prio: 1},
		Event{Kind: EvGrant, Lock: 1, Txn: 1},
		Event{Kind: EvAcquire, Lock: 1, Txn: 2, Excl: true, Prio: 0},
		Event{Kind: EvAcquire, Lock: 1, Txn: 3, Excl: false, Prio: 1},
		Event{Kind: EvGrant, Lock: 1, Txn: 3},
	)
	if v != nil {
		t.Fatalf("priority check fired while disabled: %v", v)
	}
}

func TestCheckerGrantAfterRejectAndLoss(t *testing.T) {
	c := NewChecker()
	v := feed(t, c,
		Event{Kind: EvAcquire, Lock: 1, Txn: 1, Excl: true},
		Event{Kind: EvReject, Lock: 1, Txn: 1},
		Event{Kind: EvGrant, Lock: 1, Txn: 1},
	)
	// A rejected request is forgotten entirely, so the grant is a phantom.
	wantViolation(t, v, "no-phantom-grant")

	c = NewChecker()
	v = feed(t, c,
		Event{Kind: EvAcquire, Lock: 1, Txn: 1, Excl: true},
		Event{Kind: EvLost, Lock: 1, Txn: 1},
		Event{Kind: EvGrant, Lock: 1, Txn: 1},
	)
	wantViolation(t, v, "no-grant-after-loss")
}

func TestCheckerReleaseHoldersOnly(t *testing.T) {
	c := NewChecker()
	v := feed(t, c,
		Event{Kind: EvAcquire, Lock: 1, Txn: 1, Excl: true},
		Event{Kind: EvRelease, Lock: 1, Txn: 1},
	)
	wantViolation(t, v, "release-holders-only")
}

func TestCheckerQuiesceConservation(t *testing.T) {
	c := NewChecker()
	if v := feed(t, c,
		Event{Kind: EvAcquire, Lock: 1, Txn: 1, Excl: true},
		Event{Kind: EvGrant, Lock: 1, Txn: 1},
	); v != nil {
		t.Fatalf("unexpected violation: %v", v)
	}
	wantViolation(t, c.Quiesce(), "conservation")

	// A lost request is excused from conservation.
	c = NewChecker()
	if v := feed(t, c,
		Event{Kind: EvAcquire, Lock: 1, Txn: 1, Excl: true},
		Event{Kind: EvLost, Lock: 1, Txn: 1},
	); v != nil {
		t.Fatalf("unexpected violation: %v", v)
	}
	if v := c.Quiesce(); v != nil {
		t.Fatalf("lost request must not violate conservation: %v", v)
	}
}

func TestCheckerStrictLostGrant(t *testing.T) {
	c := NewStrictChecker(2)
	if v := feed(t, c,
		Event{Kind: EvAcquire, Lock: 1, Txn: 1, Excl: true, Prio: 0},
		// The model grants txn 1 immediately; the system stays silent.
	); v != nil {
		t.Fatalf("unexpected violation: %v", v)
	}
	wantViolation(t, c.EndStep(), "no-lost-grant")
}

func TestCheckerStrictUnexpectedGrant(t *testing.T) {
	c := NewStrictChecker(2)
	v := feed(t, c,
		Event{Kind: EvAcquire, Lock: 1, Txn: 1, Excl: true, Prio: 0},
		Event{Kind: EvGrant, Lock: 1, Txn: 1},
		Event{Kind: EvAcquire, Lock: 1, Txn: 2, Excl: true, Prio: 0},
		Event{Kind: EvGrant, Lock: 1, Txn: 2},
	)
	// The model keeps txn 2 waiting; strict mode flags the grant. (The
	// generic mutual-exclusion invariant fires first here, which is fine —
	// order is documented as first-violation-wins.)
	if v == nil {
		t.Fatal("strict checker accepted a grant the model did not issue")
	}
}
