package check

import (
	"fmt"
	"math/rand"
	"testing"
)

// System is the minimal surface a lock-spec implementation exposes to the
// differential driver. Both methods return the transactions granted as a
// direct consequence of the call (the acquire itself if granted on arrival;
// the head/run promoted by a release). Adapters in each package's test
// files map the real APIs onto it.
type System interface {
	// Acquire submits a request and returns the transactions granted by it.
	Acquire(lock uint32, txn uint64, excl bool, prio uint8) []uint64
	// Release releases the granted head of the given bank. txn is advisory
	// (the transaction the driver believes is at the head); head-dequeue
	// systems may ignore it.
	Release(lock uint32, prio uint8, txn uint64) []uint64
}

// Op is one driver step. Ops are generated up front from a seed and are
// self-contained, so any subsequence replays deterministically — the
// property shrinking depends on. A release op does not name a transaction;
// it resolves Pick against the model's releasable heads at execution time
// (and is skipped when there are none), so dropping earlier ops never makes
// a later op invalid.
type Op struct {
	Acquire bool
	Lock    uint32
	Excl    bool
	Prio    uint8
	// Pick selects among the currently-releasable heads for release ops.
	Pick int
}

// String implements fmt.Stringer.
func (o Op) String() string {
	if o.Acquire {
		mode := "S"
		if o.Excl {
			mode = "X"
		}
		return fmt.Sprintf("acquire lock=%d %s prio=%d", o.Lock, mode, o.Prio)
	}
	return fmt.Sprintf("release pick=%d", o.Pick)
}

// WorkloadCfg shapes the generated op stream.
type WorkloadCfg struct {
	// Ops is the number of operations to generate.
	Ops int
	// Locks is the lock ID space: IDs 1..Locks.
	Locks int
	// Priorities is the number of priority banks.
	Priorities int
	// PExclusive is the probability an acquire is exclusive.
	PExclusive float64
	// PRelease is the probability a step is a release rather than an
	// acquire.
	PRelease float64
	// MaxOutstanding caps queued-but-unreleased requests; at the cap the
	// driver forces releases. Keep it under the per-bank region capacity
	// to stay out of overflow in strict runs.
	MaxOutstanding int
}

// DefaultWorkloadCfg is a contention-heavy mix over a few locks.
func DefaultWorkloadCfg() WorkloadCfg {
	return WorkloadCfg{
		Ops:            400,
		Locks:          3,
		Priorities:     4,
		PExclusive:     0.4,
		PRelease:       0.45,
		MaxOutstanding: 60,
	}
}

// GenOps generates a deterministic op stream from a seed. Generation does
// not consult any system state, so the same (cfg, seed) always yields the
// same ops.
func GenOps(cfg WorkloadCfg, seed int64) []Op {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]Op, 0, cfg.Ops)
	for i := 0; i < cfg.Ops; i++ {
		if rng.Float64() < cfg.PRelease {
			ops = append(ops, Op{Pick: rng.Intn(1 << 16)})
			continue
		}
		ops = append(ops, Op{
			Acquire: true,
			Lock:    uint32(1 + rng.Intn(cfg.Locks)),
			Excl:    rng.Float64() < cfg.PExclusive,
			Prio:    uint8(rng.Intn(cfg.Priorities)),
			Pick:    rng.Intn(1 << 16),
		})
	}
	return ops
}

// Harness runs generated op streams against a system under test with a
// strict lockstep checker, shrinks failures, and reports them with the
// seed needed for exact replay.
type Harness struct {
	Cfg WorkloadCfg
	// New builds a fresh system under test.
	New func() System
	// Final, if set, compares the end state of the system against the
	// model after the op stream completes (e.g. queue depths, hold flags).
	Final func(sys System, m *Model) error
	// CheckPriority is passed through to the checker (default true via
	// Run; set by RunSeed callers that need it off).
	NoPriority bool
}

// Failure describes one failing run: the violation (or final-state
// mismatch) and the shrunk op stream that reproduces it.
type Failure struct {
	Seed int64
	Err  error
	Ops  []Op
}

// Error implements the error interface.
func (f *Failure) Error() string {
	return fmt.Sprintf("seed %d (%d ops after shrinking): %v", f.Seed, len(f.Ops), f.Err)
}

// Run executes the harness for each seed (Seeds() by default), failing the
// test with a replay line on the first violation.
func (h *Harness) Run(t *testing.T, seeds ...int64) {
	t.Helper()
	if len(seeds) == 0 {
		seeds = Seeds()
	}
	for _, seed := range seeds {
		if f := h.RunSeed(seed); f != nil {
			t.Fatalf("%v\nreproduce with: go test -run %s %s\nshrunk ops:\n%s",
				f, t.Name(), ReplayArgs(seed), FormatOps(f.Ops))
		}
	}
}

// RunSeed generates and executes one op stream, shrinking on failure.
// It returns nil when the run passes.
func (h *Harness) RunSeed(seed int64) *Failure {
	ops := GenOps(h.Cfg, seed)
	err := h.execute(ops)
	if err == nil {
		return nil
	}
	shrunk := h.shrink(ops)
	serr := h.execute(shrunk)
	if serr == nil {
		// Shrinking is best-effort; never mask the original failure.
		shrunk, serr = ops, err
	}
	return &Failure{Seed: seed, Err: serr, Ops: shrunk}
}

// execute replays one op stream against a fresh system with a fresh strict
// checker, returning the first violation (or final-state mismatch).
func (h *Harness) execute(ops []Op) error {
	sys := h.New()
	ck := NewStrictChecker(h.Cfg.Priorities)
	ck.CheckPriority = !h.NoPriority
	m := ck.Model()
	var txn uint64
	feed := func(kind EventKind, lock uint32, t uint64, excl bool, prio uint8, granted []uint64) *Violation {
		if v := ck.Observe(Event{Kind: kind, Lock: lock, Txn: t, Excl: excl, Prio: prio}); v != nil {
			return v
		}
		for _, g := range granted {
			// The request's mode/priority are known to the checker; only
			// identity matters on grant events.
			if v := ck.Observe(Event{Kind: EvGrant, Lock: lock, Txn: g}); v != nil {
				return v
			}
		}
		return ck.EndStep()
	}
	for _, op := range ops {
		if op.Acquire && m.Outstanding() < h.Cfg.MaxOutstanding {
			txn++
			granted := sys.Acquire(op.Lock, txn, op.Excl, op.Prio)
			if v := feed(EvAcquire, op.Lock, txn, op.Excl, op.Prio, granted); v != nil {
				return v
			}
			continue
		}
		heads := m.ReleasableHeads()
		if len(heads) == 0 {
			continue
		}
		lp := heads[op.Pick%len(heads)]
		headTxn, _, headExcl, _ := m.Head(lp.Lock, lp.Prio)
		granted := sys.Release(lp.Lock, lp.Prio, headTxn)
		if v := feed(EvRelease, lp.Lock, headTxn, headExcl, lp.Prio, granted); v != nil {
			return v
		}
	}
	// Drain: release everything so Quiesce checks conservation.
	for {
		heads := m.ReleasableHeads()
		if len(heads) == 0 {
			break
		}
		lp := heads[0]
		headTxn, _, headExcl, _ := m.Head(lp.Lock, lp.Prio)
		granted := sys.Release(lp.Lock, lp.Prio, headTxn)
		if v := feed(EvRelease, lp.Lock, headTxn, headExcl, lp.Prio, granted); v != nil {
			return v
		}
	}
	if v := ck.Quiesce(); v != nil {
		return v
	}
	if h.Final != nil {
		if err := h.Final(sys, m); err != nil {
			return fmt.Errorf("final state mismatch: %w", err)
		}
	}
	return nil
}

// shrink reduces a failing op stream with greedy chunk removal (ddmin
// style): repeatedly try dropping chunks of decreasing size, keeping any
// subsequence that still fails. Ops are self-contained, so every
// subsequence is executable.
func (h *Harness) shrink(ops []Op) []Op {
	cur := ops
	chunk := len(cur) / 2
	if chunk < 1 {
		chunk = 1
	}
	for {
		removed := false
		for start := 0; start+chunk <= len(cur); {
			cand := make([]Op, 0, len(cur)-chunk)
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[start+chunk:]...)
			if h.execute(cand) != nil {
				cur = cand
				removed = true
				// Do not advance: the next chunk slid into this position.
			} else {
				start += chunk
			}
		}
		if chunk == 1 {
			if !removed {
				return cur
			}
			continue // a 1-op pass removed something; try another pass
		}
		chunk /= 2
	}
}

// FormatOps renders an op stream one op per line for failure reports.
func FormatOps(ops []Op) string {
	out := ""
	for i, op := range ops {
		out += fmt.Sprintf("  %3d: %s\n", i, op)
	}
	return out
}
