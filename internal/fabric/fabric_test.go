package fabric

import (
	"context"
	"testing"
	"time"

	"netlock"
	"netlock/internal/ctrlplane"
	"netlock/internal/switchdp"
	"netlock/internal/transport"
	"netlock/internal/wire"
)

const timeout = 10 * time.Second

func build(t *testing.T, cfg Config) *Fabric {
	t.Helper()
	if cfg.Rack.DataPlane.MaxLocks == 0 {
		cfg.Rack.DataPlane = switchdp.Config{MaxLocks: 64, TotalSlots: 256, Priorities: 1}
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f
}

func fastClient(t *testing.T, f *Fabric) *transport.Client {
	t.Helper()
	c, err := f.NewClient(transport.ClientConfig{RetryInterval: 25 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// lockOn returns a lock ID homed on the given rack.
func lockOn(t *testing.T, m *wire.ShardMap, rack int) uint32 {
	t.Helper()
	for id := uint32(1); id < 10000; id++ {
		if m.RackOf(id) == rack {
			return id
		}
	}
	t.Fatalf("no lock on rack %d in 10000 IDs", rack)
	return 0
}

func acquire(t *testing.T, c *transport.Client, lockID uint32) *transport.Grant {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	g, err := c.Acquire(ctx, lockID, netlock.Exclusive)
	if err != nil {
		t.Fatalf("acquire %d: %v", lockID, err)
	}
	return g
}

func release(t *testing.T, g *transport.Grant) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := g.ReleaseWait(ctx); err != nil {
		t.Fatalf("release lock %d: %v", g.LockID(), err)
	}
}

// TestFabricBringup: a 2-rack fabric routes each lock to its map-assigned
// rack, with no cross-rack traffic in the steady state.
func TestFabricBringup(t *testing.T) {
	f := build(t, Config{Racks: 2, Shards: 8})
	c := fastClient(t, f)
	m := f.Controller().Map()
	if m.Epoch != 1 {
		t.Fatalf("initial map epoch = %d, want 1", m.Epoch)
	}
	for rack := 0; rack < 2; rack++ {
		g := acquire(t, c, lockOn(t, m, rack))
		if g.Rack() != rack {
			t.Fatalf("lock homed on rack %d granted from rack %d", rack, g.Rack())
		}
		release(t, g)
	}
}

// TestFabricChaosBringup: the racks share one lossy chaos network;
// in-rack links stay reliable, client traffic retries through the loss.
func TestFabricChaosBringup(t *testing.T) {
	f := build(t, Config{
		Racks: 2,
		Rack:  ctrlplane.Config{Switches: 2},
		Chaos: &transport.ChaosConfig{Seed: 7, Drop: 0.05, Dup: 0.05},
	})
	c := fastClient(t, f)
	m := f.Controller().Map()
	for i := 0; i < 8; i++ {
		release(t, acquire(t, c, lockOn(t, m, i%2)+uint32(i)*0)) // same two locks, alternating racks
	}
}

// TestRehomeLiveState is the heart of the protocol: a shard moves racks
// while one client HOLDS a lock in it and another WAITS on the same lock.
// The hold must release exactly once (at the new rack), the waiter must be
// granted exactly once (by the new rack), and subsequent traffic routes to
// the new home.
func TestRehomeLiveState(t *testing.T) {
	f := build(t, Config{Racks: 2, Rack: ctrlplane.Config{Switches: 2}})
	m := f.Controller().Map()
	lock := lockOn(t, m, 0)
	shard := m.ShardOf(lock)

	holder := fastClient(t, f)
	g := acquire(t, holder, lock)
	if g.Rack() != 0 {
		t.Fatalf("granted from rack %d, want 0", g.Rack())
	}
	waiter := fastClient(t, f)
	wctx, wcancel := context.WithTimeout(context.Background(), timeout)
	defer wcancel()
	wa, err := waiter.AcquireAsync(wctx, lock, netlock.Exclusive)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(timeout)
	for f.Rack(0).Head().Snapshot().PendingAcquires == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued at rack 0")
		}
		time.Sleep(time.Millisecond)
	}

	if err := f.Controller().Rehome(shard, 1); err != nil {
		t.Fatal(err)
	}
	if got := f.Controller().Epoch(); got != 2 {
		t.Fatalf("map epoch after rehome = %d, want 2", got)
	}
	hist := f.Controller().History()
	if len(hist) != 1 || hist[0] != (Rehome{Shard: shard, From: 0, To: 1, Epoch: 2, Locks: 1}) {
		t.Fatalf("history = %+v", hist)
	}

	// The holder's release bounces off rack 0 (OpWrongRack + new map) and
	// completes at rack 1, which unblocks the waiter — whose grant must
	// come from rack 1.
	release(t, g)
	wg, err := wa.Wait(wctx)
	if err != nil {
		t.Fatalf("waiter after rehome: %v", err)
	}
	if wg.Rack() != 1 {
		t.Fatalf("waiter granted from rack %d, want 1", wg.Rack())
	}
	release(t, wg)

	// Fresh traffic routes straight to the new home.
	g2 := acquire(t, holder, lock)
	if g2.Rack() != 1 {
		t.Fatalf("post-rehome grant from rack %d, want 1", g2.Rack())
	}
	release(t, g2)

	// No lock state may remain at the source.
	for _, srv := range f.Rack(0).Servers() {
		for _, id := range srv.OwnedLocks() {
			if id == lock {
				t.Fatal("rack 0 still owns the re-homed lock")
			}
		}
	}
}

// TestRehomeSwitchResident: a switch-resident lock is demoted out of the
// source data plane as part of the export and serves from the destination
// afterwards.
func TestRehomeSwitchResident(t *testing.T) {
	f := build(t, Config{Racks: 2})
	m := f.Controller().Map()
	lock := lockOn(t, m, 0)
	if err := f.Rack(0).Controller().InstallLock(lock, []switchdp.Region{{Left: 0, Right: 8}}); err != nil {
		t.Fatal(err)
	}
	c := fastClient(t, f)
	g := acquire(t, c, lock)
	if err := f.Controller().Rehome(m.ShardOf(lock), 1); err != nil {
		t.Fatal(err)
	}
	release(t, g)
	g2 := acquire(t, c, lock)
	if g2.Rack() != 1 {
		t.Fatalf("post-rehome grant from rack %d, want 1", g2.Rack())
	}
	release(t, g2)
	if n := f.Rack(0).Head().Snapshot().ResidentLocks; n != 0 {
		t.Fatalf("source still has %d resident locks", n)
	}
}

// TestFailRack: killing a rack's head must not take the shard down — the
// chain promotes a successor that inherited the shard map, and in-flight
// clients fail over to it.
func TestFailRack(t *testing.T) {
	f := build(t, Config{Racks: 2, Rack: ctrlplane.Config{Switches: 2}})
	m := f.Controller().Map()
	lock := lockOn(t, m, 0)
	c := fastClient(t, f)
	release(t, acquire(t, c, lock))

	if err := f.Controller().FailRack(0); err != nil {
		t.Fatal(err)
	}
	g := acquire(t, c, lock) // retries rotate onto the promoted head
	if g.Rack() != 0 {
		t.Fatalf("granted from rack %d, want 0 (same rack, new head)", g.Rack())
	}
	release(t, g)
	// The other rack is untouched.
	release(t, acquire(t, c, lockOn(t, m, 1)))
}

// TestBalanceTick: demand measured on one rack only should trigger a
// re-home of its hottest shard onto the idle rack.
func TestBalanceTick(t *testing.T) {
	f := build(t, Config{Racks: 2, Shards: 8})
	m := f.Controller().Map()
	lock := lockOn(t, m, 0)
	c := fastClient(t, f)
	for i := 0; i < 10; i++ {
		release(t, acquire(t, c, lock))
	}
	mv, err := f.Controller().BalanceTick(1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if mv == nil {
		t.Fatal("BalanceTick saw one-sided load and did nothing")
	}
	if mv.Shard != m.ShardOf(lock) || mv.To != 1 {
		t.Fatalf("moved shard %d to rack %d, want shard %d to rack 1", mv.Shard, mv.To, m.ShardOf(lock))
	}
	if got := f.Controller().Map().RackOf(lock); got != 1 {
		t.Fatalf("lock homes on rack %d after balance, want 1", got)
	}
	// A balanced (here: idle) fabric must not churn.
	mv, err = f.Controller().BalanceTick(1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if mv != nil {
		t.Fatalf("idle fabric moved shard %d", mv.Shard)
	}
}
