package fabric

import (
	"fmt"
	"sync"
	"time"

	"netlock/internal/ctrlplane"
	"netlock/internal/wire"
)

// Rehome records one completed shard move, for oracles that need to know
// which rack legitimately spoke for a shard at a given map epoch.
type Rehome struct {
	Shard uint32
	From  int
	To    int
	// Epoch is the shard-map epoch the move published — the first epoch
	// under which To is the shard's home.
	Epoch uint64
	// Locks is how many locks moved with live queue state.
	Locks int
}

// Controller owns the fabric's shard map: it is the only writer of map
// epochs, and shards change home only through it. Safe for concurrent use;
// re-homes serialize.
type Controller struct {
	mu           sync.Mutex
	racks        []*ctrlplane.Topology
	m            *wire.ShardMap
	history      []Rehome
	drainTimeout time.Duration
}

func newController(racks []*ctrlplane.Topology, m *wire.ShardMap, drainTimeout time.Duration) *Controller {
	if drainTimeout <= 0 {
		drainTimeout = 10 * time.Second
	}
	return &Controller{racks: racks, m: m.Clone(), drainTimeout: drainTimeout}
}

// Map returns a copy of the current shard map.
func (c *Controller) Map() *wire.ShardMap {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m.Clone()
}

// Epoch returns the current shard-map epoch.
func (c *Controller) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m.Epoch
}

// History returns the completed re-homes, oldest first.
func (c *Controller) History() []Rehome {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Rehome(nil), c.history...)
}

// FailRack kills rack i's chain head; the rack recovers through its own
// chain failover (the promoted head inherits the shard map and fences,
// which were installed chain-wide).
func (c *Controller) FailRack(i int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.racks) {
		return fmt.Errorf("fabric: fail rack %d of %d", i, len(c.racks))
	}
	return c.racks[i].Controller().FailHead()
}

// Rehome moves one shard's home from its current rack to rack `to`,
// drained shard-at-a-time behind an epoch fence:
//
//  1. fence the shard on the source chain — client ops for its locks are
//     silently dropped (clients keep retrying on their sweep), so from
//     here no new state can form at the source;
//  2. wait for in-flight releases to drain, so the exported queues are
//     quiescent;
//  3. export every matching lock's live state (switch-resident locks are
//     demoted first) and purge the source's client tables — the source
//     no longer speaks for the shard;
//  4. import at the destination: locks land on their home servers with
//     leases rebased, and the destination chain's client tables are
//     seeded so in-flight releases and waiters complete there;
//  5. publish the new map under epoch+1 — destination first (so a
//     bounced client re-routing there is accepted, never ping-ponged),
//     then the bystander racks, the source last;
//  6. unfence the source: retried ops now bounce OpWrongRack carrying
//     the new map, and clients re-route.
//
// The fence plus the single-writer epoch means no transaction observes
// the shard live in two racks: until step 5 only the source's (fenced,
// dropping) chain owns it, after step 5 only the destination's.
func (c *Controller) Rehome(shard uint32, to int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if int(shard) >= c.m.Shards() {
		return fmt.Errorf("fabric: rehome shard %d of %d", shard, c.m.Shards())
	}
	if to < 0 || to >= len(c.racks) {
		return fmt.Errorf("fabric: rehome to rack %d of %d", to, len(c.racks))
	}
	from := c.m.RackAt(shard)
	if from == to {
		return nil
	}
	src := c.racks[from].Controller()
	dst := c.racks[to].Controller()
	match := func(id uint32) bool { return c.m.ShardOf(id) == shard }

	src.SetShardFence(shard, true)
	deadline := time.Now().Add(c.drainTimeout)
	for !src.ReleasesDrained(match) {
		if time.Now().After(deadline) {
			src.SetShardFence(shard, false)
			return fmt.Errorf("fabric: shard %d releases did not drain within %v", shard, c.drainTimeout)
		}
		time.Sleep(time.Millisecond)
	}

	states, err := src.ExportShard(match)
	if err != nil {
		src.SetShardFence(shard, false)
		return fmt.Errorf("fabric: export shard %d: %w", shard, err)
	}
	if err := dst.ImportShard(states); err != nil {
		// The state is out of the source; importing nowhere would lose it.
		// There is no partial-failure path out of ImportShard short of a
		// misconfigured rack, so surface loudly rather than invent one.
		return fmt.Errorf("fabric: import shard %d into rack %d: %w", shard, to, err)
	}

	next := c.m.Clone()
	next.Epoch++
	next.Assign[shard] = uint8(to)
	dst.SetShardMap(next, to)
	for i, tp := range c.racks {
		if i != from && i != to {
			tp.Controller().SetShardMap(next, i)
		}
	}
	src.SetShardMap(next, from)
	src.SetShardFence(shard, false)
	c.m = next
	c.history = append(c.history, Rehome{Shard: shard, From: from, To: to, Epoch: next.Epoch, Locks: len(states)})
	return nil
}

// BalanceTick is the fabric-level rebalance step: it reads every rack's
// per-lock demand gauges over the given window, aggregates them per shard,
// and — when the hottest rack carries more than ratio× the coldest rack's
// load — re-homes the hottest rack's hottest shard onto the coldest rack.
// Returns the move made, or nil when the fabric is balanced (or too idle
// to judge). One shard per tick keeps each move small and lets demand
// re-measure before the next.
func (c *Controller) BalanceTick(windowSec, ratio float64) (*Rehome, error) {
	if ratio < 1 {
		ratio = 1
	}
	c.mu.Lock()
	rackLoad := make([]float64, len(c.racks))
	shardLoad := make(map[uint32]float64)
	for i, tp := range c.racks {
		for _, d := range tp.Controller().MeasureDemands(windowSec) {
			sh := c.m.ShardOf(d.LockID)
			rackLoad[i] += d.Rate
			// Demand gauges are per-rack; a lock's load only counts toward
			// its home shard when measured on its home rack (residue from a
			// just-moved shard should not double-count).
			if c.m.RackAt(sh) == i {
				shardLoad[sh] += d.Rate
			}
		}
	}
	hot, cold := 0, 0
	for i := range rackLoad {
		if rackLoad[i] > rackLoad[hot] {
			hot = i
		}
		if rackLoad[i] < rackLoad[cold] {
			cold = i
		}
	}
	if hot == cold || rackLoad[hot] == 0 || rackLoad[hot] <= ratio*rackLoad[cold] {
		c.mu.Unlock()
		return nil, nil
	}
	var pick uint32
	found := false
	for sh, load := range shardLoad {
		if c.m.RackAt(sh) != hot {
			continue
		}
		if !found || load > shardLoad[pick] || (load == shardLoad[pick] && sh < pick) {
			pick, found = sh, true
		}
	}
	c.mu.Unlock()
	if !found {
		return nil, nil
	}
	if err := c.Rehome(pick, cold); err != nil {
		return nil, err
	}
	mv := Rehome{Shard: pick, From: hot, To: cold}
	c.mu.Lock()
	if n := len(c.history); n > 0 {
		mv = c.history[n-1]
	}
	c.mu.Unlock()
	return &mv, nil
}
