// Package fabric assembles a multi-rack NetLock deployment: N independent
// racks (each a ctrlplane.Topology — its own switch chain and lock
// servers) sharing one lock space, partitioned by an epoch-versioned
// wire.ShardMap. The paper scales a single switch's SRAM (§4.4); the
// fabric scales past one switch entirely, the way NetChain shards its
// key space across switch groups: every lock has exactly one home rack at
// any instant, clients route by shard map, and the fabric controller
// re-homes shards between racks behind an epoch fence so no transaction
// is ever live in two racks.
package fabric

import (
	"fmt"
	"time"

	"netlock/internal/ctrlplane"
	"netlock/internal/transport"
	"netlock/internal/wire"
)

// Config describes a fabric for New.
type Config struct {
	// Racks is the rack count (default 2).
	Racks int
	// Shards is the shard-map granularity (default 64). Shards, not locks,
	// are the unit of re-homing.
	Shards int
	// Rack is the per-rack topology template: chain length, server count,
	// data plane, quotas. Net, Chaos, and Listen are owned by the fabric
	// and must be left zero.
	Rack ctrlplane.Config
	// Chaos, when non-nil, builds every rack on one shared chaos network
	// with this profile — in-rack links stay reliable (the racks mark
	// their own members), while client↔rack traffic crosses the lossy
	// fabric. Ignored when Net is set.
	Chaos *transport.ChaosConfig
	// Net is an explicit socket factory shared by every rack; nil (with
	// nil Chaos) means real UDP on loopback.
	Net transport.Network
	// DrainTimeout bounds the post-fence release drain during a re-home
	// (default 10s).
	DrainTimeout time.Duration
}

// Fabric is a running multi-rack deployment.
type Fabric struct {
	net     transport.Network
	cn      *transport.ChaosNet // non-nil only when the fabric created it
	racks   []*ctrlplane.Topology
	ctrl    *Controller
	clients []*transport.Client
}

// New builds and starts a fabric: every rack is brought up on the shared
// network and the initial shard map (epoch 1, shards striped round-robin
// across racks) is installed chain-wide everywhere before any client can
// exist. On error everything already started is torn down.
func New(cfg Config) (*Fabric, error) {
	nracks := cfg.Racks
	if nracks == 0 {
		nracks = 2
	}
	if nracks < 1 || nracks > wire.MaxRacks {
		return nil, fmt.Errorf("fabric: rack count %d out of range [1,%d]", nracks, wire.MaxRacks)
	}
	shards := cfg.Shards
	if shards == 0 {
		shards = 64
	}
	if cfg.Rack.Net != nil || cfg.Rack.Chaos != nil || cfg.Rack.Listen != "" {
		return nil, fmt.Errorf("fabric: Rack.Net/Chaos/Listen are fabric-owned; set Config.Chaos or Config.Net")
	}
	m, err := wire.NewShardMap(nracks, shards)
	if err != nil {
		return nil, err
	}
	m.Epoch = 1

	f := &Fabric{net: cfg.Net}
	if f.net == nil && cfg.Chaos != nil {
		f.cn = transport.NewChaosNet(*cfg.Chaos)
		f.net = f.cn
	}
	fail := func(err error) (*Fabric, error) {
		f.Close()
		return nil, err
	}
	for i := 0; i < nracks; i++ {
		rc := cfg.Rack
		rc.Net = f.net // nil stays nil: each rack then uses real UDP
		tp, err := ctrlplane.New(rc)
		if err != nil {
			return fail(fmt.Errorf("fabric: rack %d: %w", i, err))
		}
		f.racks = append(f.racks, tp)
		tp.Controller().SetShardMap(m, i)
	}
	f.ctrl = newController(f.racks, m, cfg.DrainTimeout)
	return f, nil
}

// Controller returns the fabric-level reconfiguration authority.
func (f *Fabric) Controller() *Controller { return f.ctrl }

// Rack returns rack i's topology (for rack-local control: head snapshots,
// chain failover, server migration).
func (f *Fabric) Rack(i int) *ctrlplane.Topology { return f.racks[i] }

// Racks returns the rack count.
func (f *Fabric) Racks() int { return len(f.racks) }

// Net returns the fabric's shared socket factory (nil means real UDP).
func (f *Fabric) Net() transport.Network { return f.net }

// Chaos returns the shared chaos network, or nil when the fabric runs on
// real UDP or an externally supplied Network.
func (f *Fabric) Chaos() *transport.ChaosNet { return f.cn }

// NewClient builds a fabric-mode client: every rack's chain addresses
// (head first) and a snapshot of the current shard map are wired in; the
// map self-heals via wrong-rack bounces if it goes stale. The rest of cfg
// (batching, retry cadence, OnFailover) passes through. The client is
// closed by Fabric.Close.
func (f *Fabric) NewClient(cfg transport.ClientConfig) (*transport.Client, error) {
	racks := make([][]string, len(f.racks))
	for i, tp := range f.racks {
		racks[i] = tp.Controller().Addrs()
	}
	cfg.Fabric = &transport.FabricClientConfig{Racks: racks, Map: f.ctrl.Map()}
	cfg.Net = f.net
	c, err := transport.NewClientConfig(cfg)
	if err != nil {
		return nil, err
	}
	f.clients = append(f.clients, c)
	return c, nil
}

// Close tears the fabric down: clients first (their abandon path
// auto-releases raced-in grants), then every rack, then the shared chaos
// drain so no delayed delivery races a WaitGroup.
func (f *Fabric) Close() {
	for _, c := range f.clients {
		c.Close()
	}
	for _, tp := range f.racks {
		tp.Close()
	}
	if f.cn != nil {
		f.cn.Wait()
	}
}
