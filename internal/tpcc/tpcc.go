// Package tpcc generates the lock sets of TPC-C transactions, the
// application workload of the paper's evaluation (§6.1, Figures 10–14).
//
// The generator produces what the lock manager sees: for each transaction
// of the standard mix (New-Order 45%, Payment 43%, Order-Status 4%,
// Delivery 4%, Stock-Level 4%), the set of locks the transaction takes with
// their modes, plus the in-memory execution time. SQL execution is think
// time, exactly how the paper uses TPC-C against DSLR.
//
// Contention follows the paper's two settings: a low-contention
// configuration with ten warehouses per client node and a high-contention
// configuration with one warehouse per node. Payment's exclusive warehouse
// lock and New-Order's exclusive district lock make warehouses/districts
// the hot spots as warehouse count shrinks.
//
// Lock IDs encode (table, key) in 32 bits. Within a transaction, lock IDs
// are sorted, giving a global acquisition order that excludes deadlock —
// the standard discipline for lock-ordered transaction runtimes.
package tpcc

import (
	"math/rand"
	"sort"

	"netlock/internal/cluster"
	"netlock/internal/wire"
)

// Table identifiers in the lock ID encoding.
const (
	tableWarehouse uint32 = iota + 1
	tableDistrict
	tableCustomer
	tableItem
	tableStock
	tableOrder
)

// Standard TPC-C scale constants.
const (
	DistrictsPerWarehouse = 10
	CustomersPerDistrict  = 3000
	Items                 = 100_000
)

// LockID encodes a (table, key) pair.
func LockID(table uint32, key uint32) uint32 {
	return table<<28 | key&(1<<28-1)
}

// Config parameterizes the generator.
type Config struct {
	// Warehouses is the total warehouse count. The paper's settings are
	// 10*nodes (low contention) and 1*nodes (high contention).
	Warehouses int
	// Nodes is the number of client machines. With HomeWarehouseAffinity,
	// the warehouses partition across nodes: each client draws home
	// transactions from its own Warehouses/Nodes warehouses.
	Nodes int
	// HomeWarehouseAffinity binds each client machine to its home
	// warehouse partition (standard TPC-C); when false, warehouses are
	// chosen uniformly by everyone.
	HomeWarehouseAffinity bool
	// ThinkNs is the in-memory execution time per transaction.
	ThinkNs int64
	// OneRTT requests grant-to-database forwarding for all locks.
	OneRTT bool
	// StockPages, when positive, locks the stock table at page granularity
	// with StockPages pages per warehouse instead of row granularity. This
	// is the paper's own coarsening rule for uniform distributions (§4.5:
	// "we combine multiple locks into one coarse-grained lock to increase
	// the memory utilization"); stock access is near-uniform, so per-row
	// stock locks would be unplaceable cold locks.
	StockPages int
}

// LowContention returns the paper's low-contention setting for the given
// client node count: ten warehouses per node.
func LowContention(nodes int) Config {
	return Config{Warehouses: 10 * nodes, Nodes: nodes, HomeWarehouseAffinity: true, ThinkNs: 5_000, StockPages: 20}
}

// HighContention returns the paper's high-contention setting: one
// warehouse per node.
func HighContention(nodes int) Config {
	return Config{Warehouses: 1 * nodes, Nodes: nodes, HomeWarehouseAffinity: true, ThinkNs: 5_000, StockPages: 500}
}

// Workload generates TPC-C transactions; it implements cluster.Workload.
type Workload struct {
	cfg Config
	// Mix thresholds (cumulative percent): NewOrder, Payment, OrderStatus,
	// Delivery, StockLevel.
	stats Stats
}

// Stats counts generated transactions by type.
type Stats struct {
	NewOrder, Payment, OrderStatus, Delivery, StockLevel uint64
}

// New builds a workload generator.
func New(cfg Config) *Workload {
	if cfg.Warehouses <= 0 {
		panic("tpcc: need at least one warehouse")
	}
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	return &Workload{cfg: cfg}
}

// Stats returns the per-type transaction counts generated so far.
func (w *Workload) Stats() Stats { return w.stats }

// MaxLockID bounds the ID space for sizing baseline tables.
func (w *Workload) MaxLockID() uint32 { return LockID(tableOrder+1, 0) }

func (w *Workload) warehouse(client int, rng *rand.Rand) uint32 {
	if w.cfg.HomeWarehouseAffinity {
		per := w.cfg.Warehouses / w.cfg.Nodes
		if per < 1 {
			per = 1
		}
		base := (client % w.cfg.Nodes) * per % w.cfg.Warehouses
		return uint32((base + rng.Intn(per)) % w.cfg.Warehouses)
	}
	return uint32(rng.Intn(w.cfg.Warehouses))
}

func (w *Workload) district(rng *rand.Rand) uint32 { return uint32(rng.Intn(DistrictsPerWarehouse)) }

// NURand is TPC-C's non-uniform random distribution for customer and item
// selection (clause 2.1.6); the constant A depends on the range.
func nuRand(rng *rand.Rand, a, x, y int) int {
	return ((rng.Intn(a+1) | (x + rng.Intn(y-x+1))) % (y - x + 1)) + x
}

func (w *Workload) customerLock(wh, d uint32, rng *rand.Rand) uint32 {
	c := uint32(nuRand(rng, 1023, 0, CustomersPerDistrict-1))
	return LockID(tableCustomer, (wh*DistrictsPerWarehouse+d)*CustomersPerDistrict%(1<<26)+c)
}

func (w *Workload) itemLock(rng *rand.Rand) (item uint32) {
	return uint32(nuRand(rng, 8191, 0, Items-1))
}

// stockLock maps a (warehouse, item) stock row to its lock ID, applying the
// configured page coarsening.
func (w *Workload) stockLock(wh, item uint32) uint32 {
	if w.cfg.StockPages > 0 {
		page := item % uint32(w.cfg.StockPages)
		return LockID(tableStock, wh*uint32(w.cfg.StockPages)%(1<<26)+page)
	}
	return LockID(tableStock, wh*Items%(1<<26)+item)
}

// NextTxn implements cluster.Workload.
func (w *Workload) NextTxn(client int, rng *rand.Rand) cluster.TxnSpec {
	var locks []cluster.Request
	roll := rng.Intn(100)
	wh := w.warehouse(client, rng)
	d := w.district(rng)
	add := func(id uint32, mode wire.Mode) {
		locks = append(locks, cluster.Request{LockID: id, Mode: mode, OneRTT: w.cfg.OneRTT})
	}
	switch {
	case roll < 45: // New-Order
		w.stats.NewOrder++
		add(LockID(tableWarehouse, wh), wire.Shared)
		add(LockID(tableDistrict, wh*DistrictsPerWarehouse+d), wire.Exclusive)
		add(w.customerLock(wh, d, rng), wire.Shared)
		nItems := 5 + rng.Intn(11)
		for i := 0; i < nItems; i++ {
			// The item table is read-only catalog data; lock-based TPC-C
			// runtimes do not lock it. Stock rows are updated and take
			// exclusive locks.
			item := w.itemLock(rng)
			// 1% of stock accesses are remote warehouses.
			sw := wh
			if w.cfg.Warehouses > 1 && rng.Intn(100) == 0 {
				sw = uint32(rng.Intn(w.cfg.Warehouses))
			}
			add(w.stockLock(sw, item), wire.Exclusive)
		}
	case roll < 88: // Payment
		w.stats.Payment++
		add(LockID(tableWarehouse, wh), wire.Exclusive)
		add(LockID(tableDistrict, wh*DistrictsPerWarehouse+d), wire.Exclusive)
		add(w.customerLock(wh, d, rng), wire.Exclusive)
	case roll < 92: // Order-Status
		w.stats.OrderStatus++
		add(w.customerLock(wh, d, rng), wire.Shared)
		add(LockID(tableOrder, wh*DistrictsPerWarehouse+d), wire.Shared)
	case roll < 96: // Delivery
		w.stats.Delivery++
		for dd := uint32(0); dd < DistrictsPerWarehouse; dd++ {
			add(LockID(tableOrder, wh*DistrictsPerWarehouse+dd), wire.Exclusive)
		}
		add(w.customerLock(wh, d, rng), wire.Exclusive)
	default: // Stock-Level
		w.stats.StockLevel++
		add(LockID(tableDistrict, wh*DistrictsPerWarehouse+d), wire.Shared)
		for i := 0; i < 20; i++ {
			add(w.stockLock(wh, w.itemLock(rng)), wire.Shared)
		}
	}
	dedupeSort(&locks)
	return cluster.TxnSpec{Locks: locks, ThinkNs: w.cfg.ThinkNs, Tenant: -1}
}

// dedupeSort orders locks by descending ID (a global order prevents
// deadlock) and merges duplicates, keeping the stronger mode. Descending
// order places the hottest tables (warehouse, then district — the low table
// IDs) last, so a transaction acquires its cold row locks first and holds
// the contended locks only across its think time, the standard hot-lock-last
// discipline of lock-ordered transaction runtimes.
func dedupeSort(locks *[]cluster.Request) {
	ls := *locks
	sort.Slice(ls, func(i, j int) bool { return ls[i].LockID > ls[j].LockID })
	out := ls[:0]
	for _, l := range ls {
		if n := len(out); n > 0 && out[n-1].LockID == l.LockID {
			if l.Mode == wire.Exclusive {
				out[n-1].Mode = wire.Exclusive
			}
			continue
		}
		out = append(out, l)
	}
	*locks = out
}
