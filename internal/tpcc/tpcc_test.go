package tpcc

import (
	"math/rand"
	"testing"

	"netlock/internal/wire"
)

func TestMixDistribution(t *testing.T) {
	w := New(LowContention(10))
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100_000; i++ {
		w.NextTxn(i%10, rng)
	}
	s := w.Stats()
	total := s.NewOrder + s.Payment + s.OrderStatus + s.Delivery + s.StockLevel
	if total != 100_000 {
		t.Fatalf("total = %d", total)
	}
	frac := func(n uint64) float64 { return float64(n) / float64(total) }
	if f := frac(s.NewOrder); f < 0.43 || f > 0.47 {
		t.Fatalf("NewOrder fraction = %f, want ~0.45", f)
	}
	if f := frac(s.Payment); f < 0.41 || f > 0.45 {
		t.Fatalf("Payment fraction = %f, want ~0.43", f)
	}
	for name, n := range map[string]uint64{"OrderStatus": s.OrderStatus, "Delivery": s.Delivery, "StockLevel": s.StockLevel} {
		if f := frac(n); f < 0.03 || f > 0.05 {
			t.Fatalf("%s fraction = %f, want ~0.04", name, f)
		}
	}
}

func TestLocksSortedAndDeduped(t *testing.T) {
	w := New(HighContention(10))
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10_000; i++ {
		spec := w.NextTxn(i%10, rng)
		if len(spec.Locks) == 0 {
			t.Fatalf("transaction with no locks")
		}
		for j := 1; j < len(spec.Locks); j++ {
			if spec.Locks[j].LockID >= spec.Locks[j-1].LockID {
				t.Fatalf("locks not strictly sorted hot-last: %+v", spec.Locks)
			}
		}
	}
}

func TestDedupeKeepsStrongerMode(t *testing.T) {
	// With a single warehouse, New-Order items can collide; force the
	// general property via the helper directly.
	locks := []struct{ id uint32 }{}
	_ = locks
	w := New(Config{Warehouses: 1, HomeWarehouseAffinity: true})
	rng := rand.New(rand.NewSource(3))
	sawSharedAndExclusiveMerge := false
	for i := 0; i < 50_000 && !sawSharedAndExclusiveMerge; i++ {
		spec := w.NextTxn(0, rng)
		for _, l := range spec.Locks {
			if l.Mode == wire.Exclusive && l.LockID>>28 == tableStock {
				sawSharedAndExclusiveMerge = true
			}
		}
	}
	if !sawSharedAndExclusiveMerge {
		t.Fatalf("no exclusive stock locks generated")
	}
}

func TestHighContentionHotterWarehouses(t *testing.T) {
	count := func(cfg Config) map[uint32]int {
		w := New(cfg)
		rng := rand.New(rand.NewSource(4))
		hits := map[uint32]int{}
		for i := 0; i < 20_000; i++ {
			for _, l := range w.NextTxn(i%10, rng).Locks {
				if l.LockID>>28 == tableWarehouse {
					hits[l.LockID]++
				}
			}
		}
		return hits
	}
	low := count(LowContention(10))   // 100 warehouses
	high := count(HighContention(10)) // 10 warehouses
	if len(high) >= len(low) {
		t.Fatalf("high contention should use fewer warehouses: %d vs %d", len(high), len(low))
	}
	// Per-warehouse load is higher in the high-contention setting.
	maxLow, maxHigh := 0, 0
	for _, n := range low {
		if n > maxLow {
			maxLow = n
		}
	}
	for _, n := range high {
		if n > maxHigh {
			maxHigh = n
		}
	}
	if maxHigh <= maxLow {
		t.Fatalf("hot warehouse load should rise: low=%d high=%d", maxLow, maxHigh)
	}
}

func TestHomeWarehouseAffinity(t *testing.T) {
	// One warehouse per node: client 3 must only touch warehouse 3 (modulo
	// the 1% remote stock accesses, which target the stock table).
	w := New(HighContention(10))
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		spec := w.NextTxn(3, rng)
		for _, l := range spec.Locks {
			if l.LockID>>28 == tableWarehouse && l.LockID&(1<<28-1) != 3 {
				t.Fatalf("client 3 touched warehouse %d", l.LockID&(1<<28-1))
			}
		}
	}
	// Ten warehouses per node: client 3 draws from its own ten.
	wl := New(LowContention(10))
	seen := map[uint32]bool{}
	for i := 0; i < 2000; i++ {
		for _, l := range wl.NextTxn(3, rng).Locks {
			if l.LockID>>28 == tableWarehouse {
				seen[l.LockID&(1<<28-1)] = true
			}
		}
	}
	if len(seen) < 8 {
		t.Fatalf("low contention client should spread over ~10 home warehouses, saw %d", len(seen))
	}
	for wh := range seen {
		if wh < 30 || wh >= 40 {
			t.Fatalf("client 3 left its partition: warehouse %d", wh)
		}
	}
}

func TestLockIDEncoding(t *testing.T) {
	id := LockID(tableStock, 12345)
	if id>>28 != tableStock || id&(1<<28-1) != 12345 {
		t.Fatalf("encoding broken: %x", id)
	}
}

func TestMaxLockID(t *testing.T) {
	w := New(LowContention(10))
	rng := rand.New(rand.NewSource(6))
	max := w.MaxLockID()
	for i := 0; i < 20_000; i++ {
		for _, l := range w.NextTxn(i%10, rng).Locks {
			if l.LockID >= max {
				t.Fatalf("lock %d >= MaxLockID %d", l.LockID, max)
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	New(Config{Warehouses: 0})
}

func TestOneRTTPropagates(t *testing.T) {
	w := New(Config{Warehouses: 1, OneRTT: true})
	rng := rand.New(rand.NewSource(7))
	spec := w.NextTxn(0, rng)
	for _, l := range spec.Locks {
		if !l.OneRTT {
			t.Fatalf("OneRTT flag lost")
		}
	}
}

func TestNURandRange(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 10_000; i++ {
		v := nuRand(rng, 1023, 0, 2999)
		if v < 0 || v > 2999 {
			t.Fatalf("nuRand out of range: %d", v)
		}
	}
}
