// Package eventsim is a deterministic discrete-event simulation engine.
//
// The NetLock evaluation testbed (internal/cluster) runs entirely in virtual
// time on this engine: clients, the lock switch, lock servers, and RDMA NICs
// are processes that schedule callbacks on a shared Engine. Determinism is
// guaranteed by a strict (time, sequence) ordering of events, so every
// experiment is exactly reproducible from its seed.
//
// Time is int64 nanoseconds from the start of the run.
package eventsim

import "container/heap"

// Engine is a discrete-event scheduler. The zero value is ready to use.
// Engine is not safe for concurrent use: simulations are single-threaded by
// design (parallel runs use one Engine per goroutine).
type Engine struct {
	now     int64
	seq     uint64
	events  eventHeap
	stopped bool
}

type event struct {
	at  int64
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event   { return h[0] }

// Now returns the current virtual time in nanoseconds.
func (e *Engine) Now() int64 { return e.now }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (t < Now) runs fn at the current time, preserving FIFO order among
// same-time events.
func (e *Engine) At(t int64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now. Non-positive delays run
// at the current time.
func (e *Engine) After(d int64, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// Pending returns the number of scheduled events not yet dispatched.
func (e *Engine) Pending() int { return len(e.events) }

// Stop halts the current Run/RunUntil after the in-flight event callback
// returns. Subsequent Run calls resume from the stop point.
func (e *Engine) Stop() { e.stopped = true }

// Run dispatches events in (time, sequence) order until no events remain or
// Stop is called. It returns the final virtual time.
func (e *Engine) Run() int64 {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		ev.fn()
	}
	return e.now
}

// RunUntil dispatches events with time <= deadline, then advances the clock
// to the deadline. Events scheduled beyond the deadline remain pending.
func (e *Engine) RunUntil(deadline int64) int64 {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		if e.events.peek().at > deadline {
			break
		}
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		ev.fn()
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Station models a work-conserving FIFO service facility with a fixed
// per-job service time: a switch pipeline, one lock-server core, or an RDMA
// NIC's atomic-execution unit. Jobs submitted while the station is busy wait
// in an implicit queue; completion callbacks fire in submission order.
//
// The model is O(1) per job: because service is FIFO and the service time is
// known at submission, the completion time of job n is
// max(now, completion(n-1)) + serviceNs.
type Station struct {
	eng *Engine
	// ServiceNs is the time to process one job. A zero service time models
	// an infinitely fast facility (pure delay line).
	serviceNs int64
	busyUntil int64
	// queued counts jobs submitted but not yet completed, exposed for
	// backpressure decisions and utilization metrics.
	queued int
	// busyNs accumulates total busy time for utilization reporting.
	busyNs int64
}

// NewStation creates a station on the engine with a fixed service time.
func NewStation(eng *Engine, serviceNs int64) *Station {
	if serviceNs < 0 {
		panic("eventsim: negative service time")
	}
	return &Station{eng: eng, serviceNs: serviceNs}
}

// Submit enqueues a job; done is invoked at the job's virtual completion
// time. It returns the scheduled completion time.
func (s *Station) Submit(done func()) int64 {
	start := s.eng.now
	if s.busyUntil > start {
		start = s.busyUntil
	}
	finish := start + s.serviceNs
	s.busyUntil = finish
	s.busyNs += s.serviceNs
	s.queued++
	s.eng.At(finish, func() {
		s.queued--
		done()
	})
	return finish
}

// QueueLen returns the number of jobs submitted but not yet completed.
func (s *Station) QueueLen() int { return s.queued }

// BusyNs returns the cumulative busy time of the station.
func (s *Station) BusyNs() int64 { return s.busyNs }

// Backlog returns how far the station's committed work extends beyond the
// current time; zero when idle.
func (s *Station) Backlog() int64 {
	b := s.busyUntil - s.eng.now
	if b < 0 {
		return 0
	}
	return b
}

// ServiceNs returns the configured per-job service time.
func (s *Station) ServiceNs() int64 { return s.serviceNs }

// SetServiceNs changes the per-job service time for subsequently submitted
// jobs (used to model reconfiguring server cores between experiment runs).
func (s *Station) SetServiceNs(ns int64) {
	if ns < 0 {
		panic("eventsim: negative service time")
	}
	s.serviceNs = ns
}
