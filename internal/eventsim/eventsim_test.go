package eventsim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	var e Engine
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	end := e.Run()
	if end != 30 {
		t.Fatalf("final time = %d, want 30", end)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("dispatch order = %v, want [1 2 3]", got)
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events out of FIFO order: %v", got)
		}
	}
}

func TestEnginePastSchedulingClamped(t *testing.T) {
	var e Engine
	var ranAt int64 = -1
	e.At(100, func() {
		e.At(50, func() { ranAt = e.Now() }) // in the past
	})
	e.Run()
	if ranAt != 100 {
		t.Fatalf("past event ran at %d, want clamped to 100", ranAt)
	}
}

func TestEngineAfter(t *testing.T) {
	var e Engine
	var ranAt int64
	e.At(100, func() {
		e.After(25, func() { ranAt = e.Now() })
	})
	e.Run()
	if ranAt != 125 {
		t.Fatalf("After(25) from t=100 ran at %d, want 125", ranAt)
	}
}

func TestEngineAfterNegativeClamped(t *testing.T) {
	var e Engine
	ran := false
	e.After(-5, func() { ran = true })
	e.Run()
	if !ran || e.Now() != 0 {
		t.Fatalf("negative delay should run at current time")
	}
}

func TestEngineRunUntil(t *testing.T) {
	var e Engine
	var got []int64
	for _, at := range []int64{10, 20, 30, 40} {
		at := at
		e.At(at, func() { got = append(got, at) })
	}
	end := e.RunUntil(25)
	if end != 25 {
		t.Fatalf("RunUntil returned %d, want 25", end)
	}
	if len(got) != 2 {
		t.Fatalf("events dispatched = %v, want two", got)
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	e.Run()
	if len(got) != 4 || e.Now() != 40 {
		t.Fatalf("resume failed: got=%v now=%d", got, e.Now())
	}
}

func TestEngineRunUntilAdvancesIdleClock(t *testing.T) {
	var e Engine
	end := e.RunUntil(1000)
	if end != 1000 || e.Now() != 1000 {
		t.Fatalf("idle RunUntil should advance clock to deadline, got %d", end)
	}
}

func TestEngineStop(t *testing.T) {
	var e Engine
	count := 0
	e.At(1, func() { count++; e.Stop() })
	e.At(2, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("Stop did not halt dispatch: count=%d", count)
	}
	e.Run() // resumes
	if count != 2 {
		t.Fatalf("Run after Stop did not resume: count=%d", count)
	}
}

func TestStationSerialService(t *testing.T) {
	var e Engine
	s := NewStation(&e, 10)
	var done []int64
	for i := 0; i < 3; i++ {
		s.Submit(func() { done = append(done, e.Now()) })
	}
	e.Run()
	want := []int64{10, 20, 30}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completions = %v, want %v", done, want)
		}
	}
}

func TestStationIdleRestart(t *testing.T) {
	var e Engine
	s := NewStation(&e, 10)
	var second int64
	s.Submit(func() {})
	e.At(100, func() {
		s.Submit(func() { second = e.Now() })
	})
	e.Run()
	if second != 110 {
		t.Fatalf("idle station should start immediately: completed at %d, want 110", second)
	}
}

func TestStationQueueLenAndBusy(t *testing.T) {
	var e Engine
	s := NewStation(&e, 5)
	for i := 0; i < 4; i++ {
		s.Submit(func() {})
	}
	if s.QueueLen() != 4 {
		t.Fatalf("queue len = %d, want 4", s.QueueLen())
	}
	if s.Backlog() != 20 {
		t.Fatalf("backlog = %d, want 20", s.Backlog())
	}
	e.Run()
	if s.QueueLen() != 0 || s.Backlog() != 0 {
		t.Fatalf("station should drain: q=%d backlog=%d", s.QueueLen(), s.Backlog())
	}
	if s.BusyNs() != 20 {
		t.Fatalf("busy = %d, want 20", s.BusyNs())
	}
}

func TestStationZeroService(t *testing.T) {
	var e Engine
	s := NewStation(&e, 0)
	var at int64 = -1
	e.At(42, func() { s.Submit(func() { at = e.Now() }) })
	e.Run()
	if at != 42 {
		t.Fatalf("zero-service completion at %d, want 42", at)
	}
}

func TestStationSetServiceNs(t *testing.T) {
	var e Engine
	s := NewStation(&e, 10)
	s.SetServiceNs(3)
	if s.ServiceNs() != 3 {
		t.Fatalf("service ns = %d, want 3", s.ServiceNs())
	}
	var at int64
	s.Submit(func() { at = e.Now() })
	e.Run()
	if at != 3 {
		t.Fatalf("completion = %d, want 3", at)
	}
}

func TestStationPanicsOnNegativeService(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	NewStation(&e, -1)
}

// Property: a FIFO station's completion times are non-decreasing and spaced
// at least serviceNs apart, regardless of submission pattern.
func TestStationFIFOProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		var e Engine
		s := NewStation(&e, 7)
		var completions []int64
		t0 := int64(0)
		for _, d := range delays {
			t0 += int64(d % 20)
			e.At(t0, func() {
				s.Submit(func() { completions = append(completions, e.Now()) })
			})
		}
		e.Run()
		for i := 1; i < len(completions); i++ {
			if completions[i]-completions[i-1] < 7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the engine dispatches every scheduled event exactly once, in
// non-decreasing time order.
func TestEngineDispatchProperty(t *testing.T) {
	f := func(times []uint32) bool {
		var e Engine
		var dispatched []int64
		for _, at := range times {
			at := int64(at)
			e.At(at, func() { dispatched = append(dispatched, at) })
		}
		e.Run()
		if len(dispatched) != len(times) {
			return false
		}
		for i := 1; i < len(dispatched); i++ {
			if dispatched[i] < dispatched[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineScheduleDispatch(b *testing.B) {
	var e Engine
	fn := func() {}
	for i := 0; i < b.N; i++ {
		e.At(int64(i), fn)
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
}
