package netlock

import (
	"fmt"
	"time"

	"netlock/internal/memalloc"
	"netlock/internal/rebalance"
)

// Embedded-plane rebalancer parity: the same internal/rebalance loop that
// drives the UDP rack's ctrlplane.Controller drives each shard's
// core.Manager here, through the shardMover adapter. One loop per shard —
// switch capacity is statically partitioned (see PlacementTick), so each
// shard plans over its own slice of the register space and there is no
// cross-shard allocation decision to coordinate.

// RebalanceMove describes one attempted live move, for Config.OnRebalanceMove
// observers (typically a test oracle validating the migrated queue state).
// Granted and Waiting list the transactions that crossed the residency
// boundary holding the lock and waiting for it, in queue order.
type RebalanceMove struct {
	Shard    int
	LockID   uint32
	ToSwitch bool
	Granted  []uint64
	Waiting  []uint64
	// Err is non-nil when the move failed (capacity race, lock mid-failover);
	// a failed move is re-planned on the next tick.
	Err error
}

// RebalanceStats aggregates the per-shard rebalance loop counters.
type RebalanceStats struct {
	Ticks      uint64
	Planned    uint64
	Promotions uint64
	Demotions  uint64
	Failures   uint64
}

// shardMover adapts one shard's core.Manager to rebalance.Mover. Each
// method takes the shard mutex for exactly its own duration, so the loop's
// measure-plan-move round interleaves with live traffic move by move rather
// than stopping the shard for the whole tick.
type shardMover struct {
	sh *shard
}

func (sm *shardMover) MeasureDemands(windowSec float64) []memalloc.Demand {
	sm.sh.mu.Lock()
	defer sm.sh.mu.Unlock()
	if sm.sh.closed {
		return nil
	}
	return sm.sh.mgr.MeasureDemands(windowSec)
}

func (sm *shardMover) Placement() map[uint32]uint64 {
	sm.sh.mu.Lock()
	defer sm.sh.mu.Unlock()
	if sm.sh.closed {
		return nil
	}
	return sm.sh.mgr.Placement()
}

func (sm *shardMover) SwitchCapacity() uint64 {
	sm.sh.mu.Lock()
	defer sm.sh.mu.Unlock()
	if sm.sh.closed {
		return 0
	}
	return sm.sh.mgr.SwitchCapacity()
}

func (sm *shardMover) MoveToSwitch(lockID uint32, slots uint64) (rebalance.Report, error) {
	sm.sh.mu.Lock()
	defer sm.sh.mu.Unlock()
	if sm.sh.closed {
		return rebalance.Report{}, ErrClosed
	}
	rep, err := sm.sh.mgr.MoveToSwitch(lockID, slots)
	return rebalance.Report{
		LockID: rep.LockID, ToSwitch: true, Granted: rep.Granted, Waiting: rep.Waiting,
	}, err
}

func (sm *shardMover) MoveToServer(lockID uint32) (rebalance.Report, error) {
	sm.sh.mu.Lock()
	defer sm.sh.mu.Unlock()
	if sm.sh.closed {
		return rebalance.Report{}, ErrClosed
	}
	rep, emits, err := sm.sh.mgr.MoveToServer(lockID)
	if err == nil {
		// q2 replay: requests the server buffered while the lock was
		// switch-resident settle behind the migrated queue.
		sm.sh.routeServerEmits(emits)
	}
	return rebalance.Report{
		LockID: rep.LockID, ToSwitch: false, Granted: rep.Granted, Waiting: rep.Waiting,
	}, err
}

// initRebalance builds one rebalance loop per shard. Called from New.
func (m *Manager) initRebalance() {
	for i, sh := range m.shards {
		rcfg := rebalance.Config{
			Interval: m.cfg.RebalanceInterval,
			Budget:   m.cfg.RebalanceBudget,
		}
		if hook := m.cfg.OnRebalanceMove; hook != nil {
			shardIdx := i
			rcfg.OnMove = func(r rebalance.Report, err error) {
				hook(RebalanceMove{
					Shard: shardIdx, LockID: r.LockID, ToSwitch: r.ToSwitch,
					Granted: r.Granted, Waiting: r.Waiting, Err: err,
				})
			}
		}
		sh.rebal = rebalance.New(&shardMover{sh: sh}, rcfg)
	}
}

// RebalanceTick runs one synchronous rebalance round on every shard —
// measure the demand window, re-solve the placement knapsack, execute the
// planned live moves — and reports how many moves completed. Safe to call
// concurrently with traffic; must not be called from OnRebalanceMove.
func (m *Manager) RebalanceTick() (moves int) {
	if m.closed.Load() {
		return 0
	}
	for _, sh := range m.shards {
		moves += sh.rebal.Tick()
	}
	return moves
}

// RebalanceStats returns the loop counters summed across shards.
func (m *Manager) RebalanceStats() RebalanceStats {
	var out RebalanceStats
	for _, sh := range m.shards {
		st := sh.rebal.Stats()
		out.Ticks += st.Ticks
		out.Planned += st.Planned
		out.Promotions += st.Promotions
		out.Demotions += st.Demotions
		out.Failures += st.Failures
	}
	return out
}

func (m *Manager) rebalanceLoop() {
	defer m.wg.Done()
	t := time.NewTicker(m.cfg.RebalanceInterval)
	defer t.Stop()
	for {
		select {
		case <-m.stopCh:
			return
		case <-t.C:
			m.RebalanceTick()
		}
	}
}

// MoveToSwitch live-promotes a server-owned lock into the switch with the
// given total slot count (split across priority banks), queue state —
// granted bits included — migrating intact. The rebalance loop does this
// automatically; the explicit form serves scenarios and operators.
func (m *Manager) MoveToSwitch(lockID uint32, slots int) (RebalanceMove, error) {
	if m.closed.Load() {
		return RebalanceMove{}, ErrClosed
	}
	if slots < 0 {
		return RebalanceMove{}, fmt.Errorf("netlock: move lock %d: negative slot count", lockID)
	}
	sh := m.shardFor(lockID)
	shardIdx := int(lockID % uint32(len(m.shards)))
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed {
		return RebalanceMove{}, ErrClosed
	}
	rep, err := sh.mgr.MoveToSwitch(lockID, uint64(slots))
	return RebalanceMove{
		Shard: shardIdx, LockID: rep.LockID, ToSwitch: true,
		Granted: rep.Granted, Waiting: rep.Waiting, Err: err,
	}, err
}

// MoveToServer live-demotes a switch-resident lock to its home server,
// replaying any overflow requests the server buffered behind the migrated
// queue.
func (m *Manager) MoveToServer(lockID uint32) (RebalanceMove, error) {
	if m.closed.Load() {
		return RebalanceMove{}, ErrClosed
	}
	sh := m.shardFor(lockID)
	shardIdx := int(lockID % uint32(len(m.shards)))
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed {
		return RebalanceMove{}, ErrClosed
	}
	rep, emits, err := sh.mgr.MoveToServer(lockID)
	if err == nil {
		sh.routeServerEmits(emits)
	}
	return RebalanceMove{
		Shard: shardIdx, LockID: rep.LockID, ToSwitch: false,
		Granted: rep.Granted, Waiting: rep.Waiting, Err: err,
	}, err
}

// AddServer grows every shard's server tier by one and migrates the
// rehashed partition — live, queue state intact — onto the new servers.
// Returns the new logical server index.
func (m *Manager) AddServer() (int, error) {
	if m.closed.Load() {
		return 0, ErrClosed
	}
	m.lockAll()
	defer m.unlockAll()
	idx := 0
	for _, sh := range m.shards {
		if sh.closed {
			return 0, ErrClosed
		}
		i, emits := sh.mgr.AddServer()
		idx = i
		sh.routeServerEmits(emits)
	}
	m.cfg.Servers++
	return idx, nil
}

// DrainServer live-evacuates logical server victim on every shard: owned
// locks and overflow residue move to target, then victim's partition is
// redirected. After a successful drain the victim holds no state and can
// fail (FailServer) without any lock noticing.
func (m *Manager) DrainServer(victim, target int) error {
	if m.closed.Load() {
		return ErrClosed
	}
	m.lockAll()
	defer m.unlockAll()
	if victim < 0 || victim >= m.cfg.Servers || target < 0 || target >= m.cfg.Servers {
		return fmt.Errorf("netlock: drain %d -> %d out of range [0,%d)", victim, target, m.cfg.Servers)
	}
	var firstErr error
	for _, sh := range m.shards {
		if sh.closed {
			return ErrClosed
		}
		emits, err := sh.mgr.DrainServer(victim, target)
		if err != nil {
			// Validation errors (self-drain, redirect cycle) are identical
			// across shards; report the first and keep going so the shards
			// stay in lockstep.
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		sh.routeServerEmits(emits)
	}
	return firstErr
}
