#!/usr/bin/env sh
# Regenerates BENCH_embedded.json: the embedded hot-path benchmarks
# (serial, parallel disjoint/contended, sharded vs single-mutex baseline)
# plus the simulated Fig 8a / Fig 9 throughput numbers.
#
#   scripts/bench.sh                 # quick run, writes BENCH_embedded.json
#   scripts/bench.sh -out - | less   # print the JSON instead
#
# To compare the raw benchmarks between two commits, use benchstat:
#
#   go test -run '^$' -bench EmbeddedAcquireRelease -benchmem -count 10 . > /tmp/old.txt
#   git checkout <new> && go test -run '^$' -bench EmbeddedAcquireRelease -benchmem -count 10 . > /tmp/new.txt
#   benchstat /tmp/old.txt /tmp/new.txt
set -eu
cd "$(dirname "$0")/.."
exec go run ./cmd/benchrunner -embedded -quick "$@"
