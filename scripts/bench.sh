#!/usr/bin/env sh
# Regenerates the committed benchmark artifacts.
#
#   scripts/bench.sh                     # embedded hot path -> BENCH_embedded.json
#   scripts/bench.sh -out - | less       # same, print the JSON instead
#   scripts/bench.sh transport           # batched vs unbatched UDP transport
#                                        #   (cmd/loadgen -compare) -> BENCH_transport.json
#   scripts/bench.sh transport -quick    # shorter transport comparison
#   scripts/bench.sh scenarios           # adversarial scenario suite on both
#                                        #   planes -> BENCH_scenarios.json
#   scripts/bench.sh scenarios -workload zipf -plane embedded  # one scenario
#   scripts/bench.sh failover            # head-kill recovery: 3-member chain
#                                        #   vs single switch -> BENCH_failover.json
#   scripts/bench.sh failover -quick     # shorter failover measurement
#   scripts/bench.sh rebalance           # hot-set drift: static placement vs
#                                        #   the online rebalancer -> BENCH_rebalance.json
#   scripts/bench.sh rebalance -quick    # shorter drift measurement
#   scripts/bench.sh multirack           # shard-map fabric: 1-rack vs 4-rack
#                                        #   aggregate throughput -> BENCH_multirack.json
#   scripts/bench.sh multirack -quick    # shorter fabric comparison
#
# The default mode runs the embedded hot-path benchmarks (serial, parallel
# disjoint/contended, sharded vs single-mutex baseline) plus the simulated
# Fig 8a / Fig 9 throughput numbers. The transport mode measures the same
# closed-loop workload over real UDP sockets with client batching off
# (MaxBatch 1) and on (full frames), on identical self-hosted racks.
#
# To compare the raw benchmarks between two commits, use benchstat:
#
#   go test -run '^$' -bench EmbeddedAcquireRelease -benchmem -count 10 . > /tmp/old.txt
#   git checkout <new> && go test -run '^$' -bench EmbeddedAcquireRelease -benchmem -count 10 . > /tmp/new.txt
#   benchstat /tmp/old.txt /tmp/new.txt
set -eu
cd "$(dirname "$0")/.."
case "${1:-}" in
transport)
	shift
	exec go run ./cmd/loadgen -compare "$@"
	;;
scenarios)
	shift
	exec go run ./cmd/loadgen -workload all "$@"
	;;
failover)
	shift
	exec go run ./cmd/loadgen -failover "$@"
	;;
rebalance)
	shift
	exec go run ./cmd/loadgen -rebalance-bench "$@"
	;;
multirack)
	# 1024 locks against a fixed 16k-slot per-switch budget: one rack fits a
	# quarter of the space switch-resident, four racks fit all of it — the
	# aggregate-SRAM scaling the fabric exists for. 256 workers keep every
	# rack's egress frames full.
	shift
	exec go run ./cmd/loadgen -multirack-bench -racks 4 -workers 256 -locks 1024 "$@"
	;;
*)
	exec go run ./cmd/benchrunner -embedded -quick "$@"
	;;
esac
