package netlock

import (
	"context"
	"errors"
	"testing"
	"time"
)

// Every front end returns the same sentinel values; these tests pin the
// embedded Manager's side of that contract. internal/transport's tests pin
// the UDP client's side against the identical sentinels.

func TestErrClosedSentinel(t *testing.T) {
	lm := New(Config{Servers: 1, Shards: 1})
	lm.Close()
	if _, err := lm.Acquire(context.Background(), 1, Exclusive); !errors.Is(err, ErrClosed) {
		t.Fatalf("acquire after close: want ErrClosed, got %v", err)
	}
	if err := lm.Preinstall(1, 8); !errors.Is(err, ErrClosed) {
		t.Fatalf("preinstall after close: want ErrClosed, got %v", err)
	}
}

func TestErrTimeoutSentinel(t *testing.T) {
	lm := New(Config{Servers: 1, Shards: 1})
	defer lm.Close()
	g, err := lm.Acquire(context.Background(), 7, Exclusive)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Release()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err = lm.Acquire(ctx, 7, Exclusive)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded in chain, got %v", err)
	}
}

func TestErrCanceledNotTimeout(t *testing.T) {
	lm := New(Config{Servers: 1, Shards: 1})
	defer lm.Close()
	g, err := lm.Acquire(context.Background(), 7, Exclusive)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Release()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := lm.Acquire(ctx, 7, Exclusive)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	err = <-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if errors.Is(err, ErrTimeout) {
		t.Fatalf("explicit cancellation must not read as a timeout: %v", err)
	}
}

func TestErrQueueOverflowSentinel(t *testing.T) {
	// A one-entry server buffer: the holder occupies the queue slot, so the
	// next acquire bounces off the bounded buffer with ErrQueueOverflow.
	lm := New(Config{Servers: 1, Shards: 1, ServerOverflowLimit: 1})
	defer lm.Close()
	g, err := lm.Acquire(context.Background(), 3, Exclusive)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Release()
	_, err = lm.Acquire(context.Background(), 3, Exclusive)
	if !errors.Is(err, ErrQueueOverflow) {
		t.Fatalf("want ErrQueueOverflow, got %v", err)
	}
	if errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("overflow must not read as a quota reject: %v", err)
	}
}

func TestErrQuotaExceededSentinel(t *testing.T) {
	lm := New(Config{Servers: 1, Shards: 1, Isolation: true})
	defer lm.Close()
	lm.SetTenantQuota(1, 0, 1) // one-request burst, no refill
	g, err := lm.Acquire(context.Background(), 5, Exclusive, WithTenant(1))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Release()
	_, err = lm.Acquire(context.Background(), 9, Exclusive, WithTenant(1))
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("want ErrQuotaExceeded, got %v", err)
	}
}

func TestErrNoCapacitySentinel(t *testing.T) {
	lm := New(Config{Servers: 1, Shards: 1, SwitchSlots: 8, MaxSwitchLocks: 1})
	defer lm.Close()
	if err := lm.Preinstall(1, 4); err != nil {
		t.Fatal(err)
	}
	// The single lock-table entry is taken: installing another lock fails.
	if err := lm.Preinstall(2, 4); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("want ErrNoCapacity, got %v", err)
	}
	// Re-preinstalling a resident lock is a no-op.
	if err := lm.Preinstall(1, 4); err != nil {
		t.Fatalf("re-preinstall should be a no-op, got %v", err)
	}
}
