package netlock

// Benchmarks regenerating the paper's evaluation (§6): one testing.B target
// per table/figure. Each bench runs the corresponding experiment on the
// deterministic virtual-time testbed and reports the simulated metrics
// (MRPS/MTPS and latency) via b.ReportMetric; wall-clock ns/op measures how
// long the simulation takes, not the system under test.
//
// Run quick versions with:
//
//	go test -bench=Fig -benchtime=1x
//
// Full-scale sweeps are produced by cmd/benchrunner.

import (
	"context"
	"sync/atomic"
	"testing"

	"netlock/internal/harness"
)

func benchOpts() harness.Options { return harness.Options{Quick: true, Seed: 1} }

// BenchmarkCalibration verifies the capacity model against §5's constants:
// 18 MRPS client generation, 18 MRPS 8-core lock server.
func BenchmarkCalibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := harness.CalibrationRun(benchOpts())
		b.ReportMetric(c.ClientGenMRPS, "client-MRPS")
		b.ReportMetric(c.Server8CoreMRPS, "server-MRPS")
	}
}

// BenchmarkFig8aSharedLocks: latency vs throughput, shared locks.
func BenchmarkFig8aSharedLocks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := harness.Fig8aSharedLocks(benchOpts())
		last := pts[len(pts)-1]
		b.ReportMetric(last.AchievedMRPS, "MRPS")
		b.ReportMetric(last.MedianUs, "p50-us")
		b.ReportMetric(last.P99Us, "p99-us")
	}
}

// BenchmarkFig8bExclusiveNoContention: same, exclusive on disjoint sets.
func BenchmarkFig8bExclusiveNoContention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := harness.Fig8bExclusiveNoContention(benchOpts())
		last := pts[len(pts)-1]
		b.ReportMetric(last.AchievedMRPS, "MRPS")
		b.ReportMetric(last.MedianUs, "p50-us")
	}
}

// BenchmarkFig8cdContention: throughput/latency vs lock-set size.
func BenchmarkFig8cdContention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := harness.Fig8cdExclusiveContention(benchOpts())
		b.ReportMetric(pts[0].ThroughputMRPS, "minLocks-MRPS")
		b.ReportMetric(pts[len(pts)-1].ThroughputMRPS, "maxLocks-MRPS")
	}
}

// BenchmarkFig9SwitchVsServer: lock switch vs 1-8 core lock server.
func BenchmarkFig9SwitchVsServer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := harness.Fig9SwitchVsServer(benchOpts())
		b.ReportMetric(rows[0].SwitchMRPS, "switch-MRPS")
		b.ReportMetric(rows[0].ServerMRPS[len(rows[0].ServerMRPS)-1], "server8-MRPS")
	}
}

func reportTPCC(b *testing.B, rows []harness.SystemRow) {
	b.Helper()
	for _, r := range rows {
		b.ReportMetric(r.TxnMTPS, r.System+"-"+r.Contention+"-MTPS")
	}
}

// BenchmarkFig10TPCCTenClients: four systems, TPC-C, 10 clients / 2 servers.
func BenchmarkFig10TPCCTenClients(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTPCC(b, harness.Fig10TPCC(benchOpts()))
	}
}

// BenchmarkFig11TPCCSixClients: four systems, TPC-C, 6 clients / 6 servers.
func BenchmarkFig11TPCCSixClients(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTPCC(b, harness.Fig11TPCC(benchOpts()))
	}
}

// BenchmarkFig12aServiceDiff: priority-based service differentiation.
func BenchmarkFig12aServiceDiff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := harness.Fig12aServiceDiff(benchOpts())
		tail := func(s harness.Series) float64 {
			pts := s.Points[len(s.Points)/2:]
			var sum float64
			for _, p := range pts {
				sum += p.Rate
			}
			return sum / float64(len(pts)) / 1e6
		}
		b.ReportMetric(tail(series[2]), "diff-low-MTPS")
		b.ReportMetric(tail(series[3]), "diff-high-MTPS")
	}
}

// BenchmarkFig12bIsolation: per-tenant quotas.
func BenchmarkFig12bIsolation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := harness.Fig12bIsolation(benchOpts())
		b.ReportMetric(rows[1].Tenant1MTPS, "iso-t1-MTPS")
		b.ReportMetric(rows[1].Tenant2MTPS, "iso-t2-MTPS")
	}
}

// BenchmarkFig13aMemAlloc: knapsack vs random switch-memory allocation.
func BenchmarkFig13aMemAlloc(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := harness.Fig13aMemAlloc(benchOpts())
		b.ReportMetric(rows[1].TotalMRPS, "knapsack-MRPS")
		b.ReportMetric(rows[0].TotalMRPS, "random-MRPS")
	}
}

// BenchmarkFig13bMemAllocCDF: transaction latency CDF under each allocator.
func BenchmarkFig13bMemAllocCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := harness.Fig13bMemAllocCDF(benchOpts())
		b.ReportMetric(float64(len(series[0].Points)), "cdf-points")
	}
}

// BenchmarkFig14aThinkTime: throughput vs switch memory by think time.
func BenchmarkFig14aThinkTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := harness.Fig14aThinkTime(benchOpts())
		last := len(series[0].MRPS) - 1
		b.ReportMetric(series[0].MRPS[last], "think0-MRPS")
		b.ReportMetric(series[len(series)-1].MRPS[last], "think100-MRPS")
	}
}

// BenchmarkFig14bAllocSweep: throughput vs switch memory by allocator.
func BenchmarkFig14bAllocSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := harness.Fig14bAllocSweep(benchOpts())
		last := len(series[0].MRPS) - 1
		b.ReportMetric(series[0].MRPS[last], "knapsack-MRPS")
		b.ReportMetric(series[1].MRPS[last], "random-MRPS")
	}
}

// BenchmarkFig15Failure: switch failure and reactivation.
func BenchmarkFig15Failure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.Fig15Failure(benchOpts())
		b.ReportMetric(res.PreMRPS, "pre-MTPS")
		b.ReportMetric(res.DuringMRPS, "during-MTPS")
		b.ReportMetric(res.RecoveredMRPS, "recovered-MTPS")
	}
}

// BenchmarkEmbeddedAcquireRelease measures the embedded public API's
// acquire+release hot path (switch-resident lock, no contention).
func BenchmarkEmbeddedAcquireRelease(b *testing.B) {
	lm := New(Config{Servers: 1})
	defer lm.Close()
	ctx := context.Background()
	// Make the lock switch-resident.
	for i := 0; i < 100; i++ {
		g, err := lm.Acquire(ctx, 1, Exclusive)
		if err != nil {
			b.Fatal(err)
		}
		g.Release()
	}
	lm.PlacementTick(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := lm.Acquire(ctx, 1, Exclusive)
		if err != nil {
			b.Fatal(err)
		}
		g.Release()
	}
}

// BenchmarkEmbeddedAcquireReleaseParallel measures the sharded hot path
// under b.RunParallel. "disjoint" gives each worker its own lock (locks
// land on different shards, so the sharded variants should scale with
// cores); "contended" funnels every worker through one exclusive lock.
// The 1shard variants pin Config.Shards to 1 and are the single-mutex
// baseline the sharded numbers are compared against (see scripts/bench.sh
// and BENCH_embedded.json).
func BenchmarkEmbeddedAcquireReleaseParallel(b *testing.B) {
	b.Run("disjoint/1shard", func(b *testing.B) { benchEmbeddedParallel(b, 1, true) })
	b.Run("disjoint/sharded", func(b *testing.B) { benchEmbeddedParallel(b, 0, true) })
	b.Run("contended/1shard", func(b *testing.B) { benchEmbeddedParallel(b, 1, false) })
	b.Run("contended/sharded", func(b *testing.B) { benchEmbeddedParallel(b, 0, false) })
}

// benchEmbeddedParallel runs acquire/release pairs from GOMAXPROCS workers.
// shards == 0 uses the Config default (GOMAXPROCS shards).
func benchEmbeddedParallel(b *testing.B, shards int, disjoint bool) {
	cfg := Config{Servers: 1}
	if shards > 0 {
		cfg.Shards = shards
	}
	lm := New(cfg)
	defer lm.Close()
	ctx := context.Background()

	// One lock per potential worker for the disjoint case; workers pick
	// distinct locks, which the manager spreads round-robin over shards.
	nLocks := 1
	if disjoint {
		nLocks = 2 * lm.Shards()
		if nLocks < 8 {
			nLocks = 8
		}
	}
	for l := 1; l <= nLocks; l++ {
		for i := 0; i < 100; i++ {
			g, err := lm.Acquire(ctx, uint32(l), Exclusive)
			if err != nil {
				b.Fatal(err)
			}
			g.Release()
		}
	}
	lm.PlacementTick(1)

	var next atomic.Uint32
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		lock := uint32(1)
		if disjoint {
			lock = (next.Add(1)-1)%uint32(nLocks) + 1
		}
		for pb.Next() {
			g, err := lm.Acquire(ctx, lock, Exclusive)
			if err != nil {
				b.Error(err)
				return
			}
			g.Release()
		}
	})
}
