// Command netlockd runs a NetLock rack over real UDP sockets: one switch
// node and N lock-server nodes, optionally with a set of locks preinstalled
// in the switch data plane.
//
//	netlockd -listen 127.0.0.1:9000 -servers 2 -preinstall 1024 -slots-per-lock 16
//
// The switch address is printed on startup; point cmd/lockclient (or any
// internal/transport.Client) at it.
//
// Unless -metrics is empty, an HTTP endpoint serves the rack's
// observability surface:
//
//	/metrics      Prometheus text: per-stage latency histograms
//	              (netlock_switch_pass_ns, netlock_server_queue_wait_ns,
//	              netlock_acquire_e2e_ns), paper-aligned counters
//	              (grants, resubmits, overflows, rejects, lease expiries,
//	              per-tenant grants) and occupancy gauges (slots in use,
//	              resident locks, free entries).
//	/debug/vars   expvar JSON
//	/debug/pprof  runtime profiles
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"netlock/internal/lockserver"
	"netlock/internal/obs"
	"netlock/internal/switchdp"
	"netlock/internal/transport"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "switch UDP listen address")
	servers := flag.Int("servers", 2, "number of lock servers (in-process)")
	slots := flag.Int("slots", 100_000, "switch shared-queue slots")
	maxLocks := flag.Int("max-locks", 8192, "switch lock-table capacity")
	priorities := flag.Int("priorities", 1, "priority levels (1-8)")
	preinstall := flag.Uint("preinstall", 0, "preinstall locks 1..N in the switch")
	slotsPerLock := flag.Uint64("slots-per-lock", 16, "queue slots per preinstalled lock")
	lease := flag.Duration("lease", 500*time.Millisecond, "default lock lease (0 disables)")
	egressFlush := flag.Duration("egress-flush", 0, "hold switch egress batches open and flush on this timer (0: flush per ingress datagram)")
	metrics := flag.String("metrics", "127.0.0.1:0", "metrics/pprof HTTP listen address (empty disables)")
	flag.Parse()

	// One obs stripe for the switch plus one per lock server: each node
	// writes its own stripe lock-free; scrapes merge them into a snapshot.
	reg := obs.New(obs.Config{Stripes: 1 + *servers})

	var srvs []*transport.Server
	var addrs []string
	for i := 0; i < *servers; i++ {
		srv, err := transport.NewServer(transport.ServerConfig{
			Listen: "127.0.0.1:0",
			Config: lockserver.Config{
				Priorities:     *priorities,
				DefaultLeaseNs: int64(*lease),
				Obs:            reg.Stripe(1 + i),
			},
		})
		if err != nil {
			log.Fatalf("start lock server %d: %v", i, err)
		}
		defer srv.Close()
		srvs = append(srvs, srv)
		addrs = append(addrs, srv.Addr())
	}
	sw, err := transport.NewSwitch(transport.SwitchConfig{
		Listen: *listen,
		DataPlane: switchdp.Config{
			MaxLocks:       *maxLocks,
			TotalSlots:     *slots,
			Priorities:     *priorities,
			DefaultLeaseNs: int64(*lease),
			Obs:            reg.Stripe(0),
		},
		Servers:     addrs,
		EgressFlush: *egressFlush,
	})
	if err != nil {
		log.Fatalf("start switch: %v", err)
	}
	defer sw.Close()
	for _, srv := range srvs {
		if err := srv.SetSwitchAddr(sw.Addr()); err != nil {
			log.Fatal(err)
		}
	}

	// Control-plane placement of the preinstalled locks: install in the
	// switch and release ownership at the partition servers.
	installed := 0
	for id := uint32(1); id <= uint32(*preinstall); id++ {
		var err error
		sw.WithDataPlane(func(dp *switchdp.Switch) {
			err = dp.CtrlInstallLock(id, uniformRegions(*priorities, id, *slotsPerLock))
		})
		if err != nil {
			log.Printf("preinstall stopped at lock %d: %v", id, err)
			break
		}
		srvs[lockserver.RSSCore(id, len(srvs))].LockServer().CtrlReleaseOwnership(id)
		installed++
	}

	if *metrics != "" {
		maddr, err := serveMetrics(*metrics, reg, sw)
		if err != nil {
			log.Fatalf("metrics endpoint: %v", err)
		}
		fmt.Printf("netlockd: metrics on http://%s/metrics\n", maddr)
	}

	fmt.Printf("netlockd: switch on %s\n", sw.Addr())
	for i, a := range addrs {
		fmt.Printf("netlockd: lock server %d on %s\n", i, a)
	}
	fmt.Printf("netlockd: %d locks preinstalled (%d slots each), %d total slots, lease %v\n",
		installed, *slotsPerLock, *slots, *lease)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("netlockd: shutting down")
}

// serveMetrics starts the observability HTTP listener and returns its bound
// address. The default mux already carries /debug/pprof (net/http/pprof) and
// /debug/vars (expvar); /metrics renders a merged snapshot of every node's
// stripe plus the switch occupancy gauges as Prometheus text.
func serveMetrics(addr string, reg *obs.Registry, sw *transport.Switch) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	expvar.Publish("netlock", expvar.Func(func() any {
		return snapshotRack(reg, sw).String()
	}))
	http.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		sn := snapshotRack(reg, sw)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := sn.WriteProm(w); err != nil {
			log.Printf("metrics: write: %v", err)
		}
	})
	go http.Serve(ln, nil)
	return ln.Addr().String(), nil
}

// snapshotRack merges the counter/histogram stripes and attaches the
// switch's occupancy gauges.
func snapshotRack(reg *obs.Registry, sw *transport.Switch) *obs.Snapshot {
	sn := reg.Snapshot()
	s := sw.Snapshot()
	sn.AddGauge("switch_slots_in_use", "Occupied switch shared-queue slots.", float64(s.SlotsInUse))
	sn.AddGauge("switch_resident_locks", "Locks resident in the switch data plane.", float64(s.ResidentLocks))
	sn.AddGauge("switch_free_entries", "Free switch lock-table entries.", float64(s.FreeEntries))
	sn.AddGauge("switch_pending_acquires", "Acquires whose grant has not yet reached a client.", float64(s.PendingAcquires))
	return sn
}

// uniformRegions assigns lock id a contiguous region of n slots per bank.
func uniformRegions(banks int, id uint32, n uint64) []switchdp.Region {
	rs := make([]switchdp.Region, banks)
	left := uint64(id-1) * n
	for b := range rs {
		rs[b] = switchdp.Region{Left: left, Right: left + n}
	}
	return rs
}
