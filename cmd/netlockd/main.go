// Command netlockd runs a NetLock rack over real UDP sockets: a switch
// chain of -chain members and N lock-server nodes, optionally with a set
// of locks preinstalled in the switch data plane.
//
//	netlockd -listen 127.0.0.1:9000 -chain 3 -servers 2 -preinstall 1024 -slots-per-lock 16
//
// Every chain member's address is printed on startup (head first); point
// cmd/lockclient (or any internal/transport.Client) at the full list so
// clients survive head failure.
//
// Unless -metrics is empty, an HTTP endpoint serves the rack's
// observability surface:
//
//	/metrics      Prometheus text: per-stage latency histograms
//	              (netlock_switch_pass_ns, netlock_server_queue_wait_ns,
//	              netlock_acquire_e2e_ns), paper-aligned counters
//	              (grants, resubmits, overflows, rejects, lease expiries,
//	              per-tenant grants) and occupancy gauges (slots in use,
//	              resident locks, free entries).
//	/debug/vars   expvar JSON
//	/debug/pprof  runtime profiles
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"netlock/internal/ctrlplane"
	"netlock/internal/lockserver"
	"netlock/internal/obs"
	"netlock/internal/rebalance"
	"netlock/internal/switchdp"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "head switch UDP listen address (other nodes take ephemeral ports)")
	chain := flag.Int("chain", 1, "switch replication chain length (1-3)")
	servers := flag.Int("servers", 2, "number of lock servers (in-process)")
	slots := flag.Int("slots", 100_000, "switch shared-queue slots")
	maxLocks := flag.Int("max-locks", 8192, "switch lock-table capacity")
	priorities := flag.Int("priorities", 1, "priority levels (1-8)")
	preinstall := flag.Uint("preinstall", 0, "preinstall locks 1..N in the switch")
	slotsPerLock := flag.Uint64("slots-per-lock", 16, "queue slots per preinstalled lock")
	lease := flag.Duration("lease", 500*time.Millisecond, "default lock lease (0 disables)")
	egressFlush := flag.Duration("egress-flush", 0, "hold switch egress batches open and flush on this timer (0: flush per ingress datagram)")
	metrics := flag.String("metrics", "127.0.0.1:0", "metrics/pprof HTTP listen address (empty disables)")
	rebalanceEvery := flag.Duration("rebalance", 0, "online lock-placement rebalance interval (0 disables the loop)")
	rebalanceBudget := flag.Int("rebalance-budget", 0, "max live migrations per rebalance tick (0: rebalance default)")
	fabricRacks := flag.Int("fabric", 1, "run a multi-rack fabric with this many racks (each -chain deep; 1: single rack)")
	shards := flag.Int("shards", 64, "fabric shard-map granularity (with -fabric > 1)")
	flag.Parse()

	if *fabricRacks > 1 {
		runFabric(fabricConfig{
			racks:          *fabricRacks,
			shards:         *shards,
			chain:          *chain,
			servers:        *servers,
			slots:          *slots,
			maxLocks:       *maxLocks,
			priorities:     *priorities,
			preinstall:     *preinstall,
			slotsPerLock:   *slotsPerLock,
			lease:          *lease,
			egressFlush:    *egressFlush,
			metrics:        *metrics,
			rebalanceEvery: *rebalanceEvery,
		})
		return
	}

	// Two obs stripes: the head switch writes stripe 0 (the chain applies
	// every op once per member; counting member 0 keeps obs equal to what
	// one switch sees) and all lock servers share the atomic stripe 1;
	// scrapes merge them into one snapshot.
	reg := obs.New(obs.Config{Stripes: 2})

	tp, err := ctrlplane.New(ctrlplane.Config{
		Switches: *chain,
		Servers:  *servers,
		DataPlane: switchdp.Config{
			MaxLocks:       *maxLocks,
			TotalSlots:     *slots,
			Priorities:     *priorities,
			DefaultLeaseNs: int64(*lease),
			Obs:            reg.Stripe(0),
		},
		Server: lockserver.Config{
			Priorities:     *priorities,
			DefaultLeaseNs: int64(*lease),
			Obs:            reg.Stripe(1),
		},
		HeadListen:  *listen,
		EgressFlush: *egressFlush,
	})
	if err != nil {
		log.Fatalf("start rack: %v", err)
	}
	defer tp.Close()

	// Control-plane placement of the preinstalled locks: install chain-wide
	// and release ownership at the partition servers, one contiguous slot
	// region per priority bank.
	ctrl := tp.Controller()
	installed := 0
	off := uint64(0)
	for id := uint32(1); id <= uint32(*preinstall); id++ {
		regions := make([]switchdp.Region, *priorities)
		for b := range regions {
			regions[b] = switchdp.Region{Left: off, Right: off + *slotsPerLock}
			off += *slotsPerLock
		}
		if err := ctrl.InstallLock(id, regions); err != nil {
			log.Printf("preinstall stopped at lock %d: %v", id, err)
			break
		}
		installed++
	}

	// The online rebalancer: the same control loop the scenarios drive,
	// ticking against the live rack. Stopped before the rack closes (defer
	// order) so no move races the teardown.
	var loop *rebalance.Loop
	if *rebalanceEvery > 0 {
		loop = rebalance.New(ctrl.Mover(), rebalance.Config{
			Interval: *rebalanceEvery,
			Budget:   *rebalanceBudget,
		})
		loop.Start()
		defer loop.Stop()
		fmt.Printf("netlockd: rebalancer ticking every %v\n", *rebalanceEvery)
	}

	if *metrics != "" {
		maddr, err := serveMetrics(*metrics, reg, tp, loop)
		if err != nil {
			log.Fatalf("metrics endpoint: %v", err)
		}
		fmt.Printf("netlockd: metrics on http://%s/metrics\n", maddr)
	}

	// "netlockd: switch on <addr>" is the parseable announcement contract
	// (smoke test, scripts): the head is the client-facing address in
	// every chain size, replicas are informational extras.
	addrs := ctrl.Addrs()
	fmt.Printf("netlockd: switch on %s\n", addrs[0])
	for i, a := range addrs[1:] {
		fmt.Printf("netlockd: chain member %d on %s\n", i+1, a)
	}
	for i, srv := range tp.Servers() {
		fmt.Printf("netlockd: lock server %d on %s\n", i, srv.Addr())
	}
	fmt.Printf("netlockd: %d locks preinstalled (%d slots each), %d total slots, lease %v\n",
		installed, *slotsPerLock, *slots, *lease)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("netlockd: shutting down")
}

// serveMetrics starts the observability HTTP listener and returns its bound
// address. The default mux already carries /debug/pprof (net/http/pprof) and
// /debug/vars (expvar); /metrics renders a merged snapshot of every node's
// stripe plus the current head switch's occupancy gauges as Prometheus text.
func serveMetrics(addr string, reg *obs.Registry, tp *ctrlplane.Topology, loop *rebalance.Loop) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	expvar.Publish("netlock", expvar.Func(func() any {
		return snapshotRack(reg, tp, loop).String()
	}))
	http.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		sn := snapshotRack(reg, tp, loop)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := sn.WriteProm(w); err != nil {
			log.Printf("metrics: write: %v", err)
		}
	})
	go http.Serve(ln, nil)
	return ln.Addr().String(), nil
}

// snapshotRack merges the counter/histogram stripes and attaches the
// current chain head's occupancy gauges (every member applies the same op
// stream, so any member's occupancy is the rack's).
func snapshotRack(reg *obs.Registry, tp *ctrlplane.Topology, loop *rebalance.Loop) *obs.Snapshot {
	sn := reg.Snapshot()
	s := tp.Head().Snapshot()
	sn.AddGauge("switch_slots_in_use", "Occupied switch shared-queue slots.", float64(s.SlotsInUse))
	sn.AddGauge("switch_resident_locks", "Locks resident in the switch data plane.", float64(s.ResidentLocks))
	sn.AddGauge("switch_free_entries", "Free switch lock-table entries.", float64(s.FreeEntries))
	sn.AddGauge("switch_pending_acquires", "Acquires whose grant has not yet reached a client.", float64(s.PendingAcquires))
	sn.AddGauge("chain_epoch", "Current chain configuration epoch.", float64(tp.Controller().Epoch()))
	sn.AddGauge("chain_members", "Live switch chain members.", float64(len(tp.Switches())))
	var moved uint64
	for _, srv := range tp.Servers() {
		srv.WithLockServer(func(ls *lockserver.Server) {
			moved += ls.Stats().MovedRejects
		})
	}
	sn.AddGauge("server_moved_redirects", "Requests answered with a moved redirect while a lock was in flight between nodes.", float64(moved))
	if loop != nil {
		st := loop.Stats()
		sn.AddGauge("rebalance_ticks", "Rebalance control-loop rounds.", float64(st.Ticks))
		sn.AddGauge("rebalance_promotions", "Locks live-promoted into the switch.", float64(st.Promotions))
		sn.AddGauge("rebalance_demotions", "Locks live-demoted to the servers.", float64(st.Demotions))
		sn.AddGauge("rebalance_move_failures", "Planned moves that failed and were re-planned.", float64(st.Failures))
	}
	return sn
}
