// Command netlockd runs a NetLock rack over real UDP sockets: one switch
// node and N lock-server nodes, optionally with a set of locks preinstalled
// in the switch data plane.
//
//	netlockd -listen 127.0.0.1:9000 -servers 2 -preinstall 1024 -slots-per-lock 16
//
// The switch address is printed on startup; point cmd/lockclient (or any
// internal/transport.Client) at it.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"netlock/internal/lockserver"
	"netlock/internal/switchdp"
	"netlock/internal/transport"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "switch UDP listen address")
	servers := flag.Int("servers", 2, "number of lock servers (in-process)")
	slots := flag.Int("slots", 100_000, "switch shared-queue slots")
	maxLocks := flag.Int("max-locks", 8192, "switch lock-table capacity")
	priorities := flag.Int("priorities", 1, "priority levels (1-8)")
	preinstall := flag.Uint("preinstall", 0, "preinstall locks 1..N in the switch")
	slotsPerLock := flag.Uint64("slots-per-lock", 16, "queue slots per preinstalled lock")
	lease := flag.Duration("lease", 500*time.Millisecond, "default lock lease (0 disables)")
	flag.Parse()

	var srvs []*transport.Server
	var addrs []string
	for i := 0; i < *servers; i++ {
		srv, err := transport.NewServer(transport.ServerConfig{
			Listen: "127.0.0.1:0",
			Config: lockserver.Config{Priorities: *priorities, DefaultLeaseNs: int64(*lease)},
		})
		if err != nil {
			log.Fatalf("start lock server %d: %v", i, err)
		}
		defer srv.Close()
		srvs = append(srvs, srv)
		addrs = append(addrs, srv.Addr())
	}
	sw, err := transport.NewSwitch(transport.SwitchConfig{
		Listen: *listen,
		DataPlane: switchdp.Config{
			MaxLocks:       *maxLocks,
			TotalSlots:     *slots,
			Priorities:     *priorities,
			DefaultLeaseNs: int64(*lease),
		},
		Servers: addrs,
	})
	if err != nil {
		log.Fatalf("start switch: %v", err)
	}
	defer sw.Close()
	for _, srv := range srvs {
		if err := srv.SetSwitchAddr(sw.Addr()); err != nil {
			log.Fatal(err)
		}
	}

	// Control-plane placement of the preinstalled locks: install in the
	// switch and release ownership at the partition servers.
	installed := 0
	for id := uint32(1); id <= uint32(*preinstall); id++ {
		sw.Lock()
		err := sw.DataPlane().CtrlInstallLock(id, uniformRegions(*priorities, id, *slotsPerLock))
		sw.Unlock()
		if err != nil {
			log.Printf("preinstall stopped at lock %d: %v", id, err)
			break
		}
		srvs[lockserver.RSSCore(id, len(srvs))].LockServer().CtrlReleaseOwnership(id)
		installed++
	}

	fmt.Printf("netlockd: switch on %s\n", sw.Addr())
	for i, a := range addrs {
		fmt.Printf("netlockd: lock server %d on %s\n", i, a)
	}
	fmt.Printf("netlockd: %d locks preinstalled (%d slots each), %d total slots, lease %v\n",
		installed, *slotsPerLock, *slots, *lease)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("netlockd: shutting down")
}

// uniformRegions assigns lock id a contiguous region of n slots per bank.
func uniformRegions(banks int, id uint32, n uint64) []switchdp.Region {
	rs := make([]switchdp.Region, banks)
	left := uint64(id-1) * n
	for b := range rs {
		rs[b] = switchdp.Region{Left: left, Right: left + n}
	}
	return rs
}
