package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"netlock/internal/ctrlplane"
	"netlock/internal/fabric"
	"netlock/internal/lockserver"
	"netlock/internal/obs"
	"netlock/internal/switchdp"
)

type fabricConfig struct {
	racks, shards   int
	chain, servers  int
	slots, maxLocks int
	priorities      int
	preinstall      uint
	slotsPerLock    uint64
	lease           time.Duration
	egressFlush     time.Duration
	metrics         string
	rebalanceEvery  time.Duration
}

// runFabric is the -fabric daemon path: N racks over real UDP behind one
// shard map. Clients reconstruct the initial map from the announced
// geometry (wire.NewShardMap(racks, shards), epoch 1) and self-heal via
// wrong-rack bounces from there.
func runFabric(cfg fabricConfig) {
	// Stripe 0 collects every rack's head switch, stripe 1 every lock
	// server; the fabric-wide scrape is their merge.
	reg := obs.New(obs.Config{Stripes: 2})
	f, err := fabric.New(fabric.Config{
		Racks:  cfg.racks,
		Shards: cfg.shards,
		Rack: ctrlplane.Config{
			Switches: cfg.chain,
			Servers:  cfg.servers,
			DataPlane: switchdp.Config{
				MaxLocks:       cfg.maxLocks,
				TotalSlots:     cfg.slots,
				Priorities:     cfg.priorities,
				DefaultLeaseNs: int64(cfg.lease),
				Obs:            reg.Stripe(0),
			},
			Server: lockserver.Config{
				Priorities:     cfg.priorities,
				DefaultLeaseNs: int64(cfg.lease),
				Obs:            reg.Stripe(1),
			},
			EgressFlush: cfg.egressFlush,
		},
	})
	if err != nil {
		log.Fatalf("start fabric: %v", err)
	}
	defer f.Close()

	// Preinstalled locks land switch-resident on their map-assigned home
	// rack — installing elsewhere would leave them unreachable.
	m := f.Controller().Map()
	installed := 0
	offs := make([]uint64, cfg.racks)
	for id := uint32(1); id <= uint32(cfg.preinstall); id++ {
		rk := m.RackOf(id)
		regions := make([]switchdp.Region, cfg.priorities)
		for b := range regions {
			regions[b] = switchdp.Region{Left: offs[rk], Right: offs[rk] + cfg.slotsPerLock}
			offs[rk] += cfg.slotsPerLock
		}
		if err := f.Rack(rk).Controller().InstallLock(id, regions); err != nil {
			log.Printf("preinstall stopped at lock %d: %v", id, err)
			break
		}
		installed++
	}

	// The fabric-level rebalancer: per-rack demand gauges feed shard
	// re-homing, one shard per tick from the hottest rack to the coldest.
	stopBalance := make(chan struct{})
	defer close(stopBalance)
	if cfg.rebalanceEvery > 0 {
		go func() {
			t := time.NewTicker(cfg.rebalanceEvery)
			defer t.Stop()
			for {
				select {
				case <-stopBalance:
					return
				case <-t.C:
					mv, err := f.Controller().BalanceTick(cfg.rebalanceEvery.Seconds(), 2)
					if err != nil {
						log.Printf("balance: %v", err)
					} else if mv != nil {
						fmt.Printf("netlockd: re-homed shard %d rack %d -> %d (epoch %d, %d locks)\n",
							mv.Shard, mv.From, mv.To, mv.Epoch, mv.Locks)
					}
				}
			}
		}()
		fmt.Printf("netlockd: fabric balancer ticking every %v\n", cfg.rebalanceEvery)
	}

	if cfg.metrics != "" {
		maddr, err := serveFabricMetrics(cfg.metrics, reg, f)
		if err != nil {
			log.Fatalf("metrics endpoint: %v", err)
		}
		fmt.Printf("netlockd: metrics on http://%s/metrics\n", maddr)
	}

	fmt.Printf("netlockd: fabric of %d racks x %d shards (map epoch %d)\n", cfg.racks, cfg.shards, m.Epoch)
	for i := 0; i < f.Racks(); i++ {
		addrs := f.Rack(i).Controller().Addrs()
		fmt.Printf("netlockd: rack %d switch on %s\n", i, addrs[0])
		for j, a := range addrs[1:] {
			fmt.Printf("netlockd: rack %d chain member %d on %s\n", i, j+1, a)
		}
	}
	fmt.Printf("netlockd: %d locks preinstalled (%d slots each)\n", installed, cfg.slotsPerLock)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("netlockd: shutting down")
}

// serveFabricMetrics is the fabric-wide scrape: the merged obs stripes
// plus occupancy summed across every rack's head.
func serveFabricMetrics(addr string, reg *obs.Registry, f *fabric.Fabric) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	http.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		sn := reg.Snapshot()
		var slots, resident, pending float64
		for i := 0; i < f.Racks(); i++ {
			s := f.Rack(i).Head().Snapshot()
			slots += float64(s.SlotsInUse)
			resident += float64(s.ResidentLocks)
			pending += float64(s.PendingAcquires)
		}
		sn.AddGauge("switch_slots_in_use", "Occupied switch shared-queue slots, fabric-wide.", slots)
		sn.AddGauge("switch_resident_locks", "Locks resident in switch data planes, fabric-wide.", resident)
		sn.AddGauge("switch_pending_acquires", "Acquires whose grant has not yet reached a client.", pending)
		sn.AddGauge("fabric_racks", "Racks in the fabric.", float64(f.Racks()))
		sn.AddGauge("fabric_map_epoch", "Current shard-map epoch.", float64(f.Controller().Epoch()))
		sn.AddGauge("fabric_rehomes", "Completed shard re-homes.", float64(len(f.Controller().History())))
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := sn.WriteProm(w); err != nil {
			log.Printf("metrics: write: %v", err)
		}
	})
	go http.Serve(ln, nil)
	return ln.Addr().String(), nil
}
