package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"netlock"
	"netlock/internal/obs"
)

// The -obs mode measures what the observability layer costs on the embedded
// hot path: every benchmark runs twice over the same warmed manager shape —
// once with Config.Metrics off (the baseline the alloc-free hot path was
// tuned to) and once with it on — and the report records both plus the
// relative overhead. The metrics-on run also exercises the consumer side:
// a periodic-delta logger samples Manager.Metrics() while the benchmark
// hammers it, and the final snapshot's per-stage latency percentiles land
// in the JSON.

// obsBenchPair is one benchmark measured with metrics off and on.
type obsBenchPair struct {
	BaselineNsPerOp     float64 `json:"baseline_ns_per_op"`
	MetricsNsPerOp      float64 `json:"metrics_ns_per_op"`
	OverheadPct         float64 `json:"overhead_pct"`
	BaselineAllocsPerOp int64   `json:"baseline_allocs_per_op"`
	MetricsAllocsPerOp  int64   `json:"metrics_allocs_per_op"`
}

// obsStage is one pipeline stage's latency distribution from the final
// metrics snapshot of the metrics-on serial run.
type obsStage struct {
	Count int64 `json:"count"`
	P50Ns int64 `json:"p50_ns"`
	P90Ns int64 `json:"p90_ns"`
	P99Ns int64 `json:"p99_ns"`
}

// obsReport is the BENCH_obs.json document.
type obsReport struct {
	Generated  string `json:"generated"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"go_maxprocs"`

	Benchmarks map[string]obsBenchPair `json:"benchmarks"`
	Stages     map[string]obsStage     `json:"stages"`
	Counters   map[string]uint64       `json:"counters"`
}

// benchObs runs one acquire/release benchmark over a warmed manager with
// the given config; parallel selects RunParallel over disjoint locks.
func benchObs(cfg netlock.Config, parallel bool) (testing.BenchmarkResult, *obs.Snapshot, error) {
	nLocks := 1
	if parallel {
		nLocks = 2 * runtime.GOMAXPROCS(0)
		if nLocks < 8 {
			nLocks = 8
		}
	}
	lm, err := warmManagerCfg(cfg, nLocks)
	if err != nil {
		return testing.BenchmarkResult{}, nil, err
	}
	defer lm.Close()
	ctx := context.Background()

	// The consumer side: while the benchmark runs, sample the registry and
	// log counter deltas — proof the lock-free snapshot path coexists with
	// a saturated hot path.
	stopLog := make(chan struct{})
	logDone := make(chan struct{})
	if cfg.Metrics {
		go func() {
			defer close(logDone)
			t := time.NewTicker(250 * time.Millisecond)
			defer t.Stop()
			prev := lm.Metrics()
			for {
				select {
				case <-stopLog:
					return
				case <-t.C:
					cur := lm.Metrics()
					d := cur.DeltaCounters(prev)
					prev = cur
					line := ""
					for c := obs.Counter(0); c < obs.NumCounters; c++ {
						if d[c] != 0 {
							line += fmt.Sprintf("%s=+%d ", c, d[c])
						}
					}
					if line != "" {
						fmt.Printf("    obs delta: %s\n", line)
					}
				}
			}
		}()
	}

	var r testing.BenchmarkResult
	if parallel {
		r = testing.Benchmark(func(b *testing.B) {
			var next atomic.Uint32
			b.RunParallel(func(pb *testing.PB) {
				lock := (next.Add(1)-1)%uint32(nLocks) + 1
				for pb.Next() {
					g, err := lm.Acquire(ctx, lock, netlock.Exclusive)
					if err != nil {
						b.Error(err)
						return
					}
					g.Release()
				}
			})
		})
	} else {
		r = testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g, err := lm.Acquire(ctx, 1, netlock.Exclusive)
				if err != nil {
					b.Error(err)
					return
				}
				g.Release()
			}
		})
	}
	var sn *obs.Snapshot
	if cfg.Metrics {
		close(stopLog)
		<-logDone
		sn = lm.Metrics()
	}
	return r, sn, nil
}

func runObs(out string, quick bool) error {
	rep := obsReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Benchmarks: make(map[string]obsBenchPair),
		Stages:     make(map[string]obsStage),
		Counters:   make(map[string]uint64),
	}
	tries := 3
	if quick {
		tries = 1
	}

	type spec struct {
		name     string
		cfg      netlock.Config
		parallel bool
	}
	specs := []spec{
		{"serial", netlock.Config{Servers: 1}, false},
		{"parallel_disjoint_sharded", netlock.Config{Servers: 1}, true},
	}
	var lastSerialSnap *obs.Snapshot
	for _, s := range specs {
		var pair obsBenchPair
		var snap *obs.Snapshot
		for try := 0; try < tries; try++ {
			offCfg := s.cfg
			rOff, _, err := benchObs(offCfg, s.parallel)
			if err != nil {
				return fmt.Errorf("bench %s (metrics off): %w", s.name, err)
			}
			onCfg := s.cfg
			onCfg.Metrics = true
			rOn, sn, err := benchObs(onCfg, s.parallel)
			if err != nil {
				return fmt.Errorf("bench %s (metrics on): %w", s.name, err)
			}
			off := summarize(rOff)
			on := summarize(rOn)
			// Best of N: keep the repetition with the fastest baseline so
			// scheduling noise doesn't masquerade as instrumentation cost.
			if try == 0 || off.NsPerOp < pair.BaselineNsPerOp {
				pair = obsBenchPair{
					BaselineNsPerOp:     off.NsPerOp,
					MetricsNsPerOp:      on.NsPerOp,
					BaselineAllocsPerOp: off.AllocsPerOp,
					MetricsAllocsPerOp:  on.AllocsPerOp,
				}
				snap = sn
			}
		}
		if pair.BaselineNsPerOp > 0 {
			pair.OverheadPct = (pair.MetricsNsPerOp - pair.BaselineNsPerOp) / pair.BaselineNsPerOp * 100
		}
		rep.Benchmarks[s.name] = pair
		fmt.Printf("  %-28s %10.1f ns/op off  %10.1f ns/op on  %+6.1f%%  (%d -> %d allocs/op)\n",
			s.name, pair.BaselineNsPerOp, pair.MetricsNsPerOp, pair.OverheadPct,
			pair.BaselineAllocsPerOp, pair.MetricsAllocsPerOp)
		if !s.parallel {
			lastSerialSnap = snap
		}
	}

	if lastSerialSnap != nil {
		for st := obs.Stage(0); st < obs.NumStages; st++ {
			h := lastSerialSnap.Stage(st)
			if h.Count() == 0 {
				continue
			}
			rep.Stages[st.String()] = obsStage{
				Count: h.Count(),
				P50Ns: h.Percentile(50),
				P90Ns: h.Percentile(90),
				P99Ns: h.Percentile(99),
			}
		}
		for c := obs.Counter(0); c < obs.NumCounters; c++ {
			if v := lastSerialSnap.Counter(c); v != 0 {
				rep.Counters[c.String()] = v
			}
		}
		fmt.Printf("  final snapshot: %s\n", lastSerialSnap)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", out)
	return nil
}
