package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"netlock"
	"netlock/internal/harness"
)

// The -embedded mode measures the embedded front end's hot path (the
// sharded Acquire/Release API) with testing.Benchmark and folds in the
// simulated switch throughput from Fig 8a / Fig 9, emitting one JSON
// document per run so the bench trajectory is diffable across commits
// (compare with benchstat for the raw benches, or diff the JSON).

// embeddedBench is one measured benchmark in BENCH_embedded.json.
type embeddedBench struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MopsPerSec  float64 `json:"mops_per_sec"`
	Iterations  int     `json:"iterations"`
}

// embeddedReport is the BENCH_embedded.json document.
type embeddedReport struct {
	Generated  string `json:"generated"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"go_maxprocs"`
	Shards     int    `json:"shards"`

	Benchmarks map[string]embeddedBench `json:"benchmarks"`

	// SpeedupDisjoint is parallel-disjoint sharded ops/sec over the
	// 1-shard (single-mutex) baseline. Physical parallelism requires
	// NumCPU >= GoMaxProcs for this to reflect the sharding win.
	SpeedupDisjoint float64 `json:"speedup_disjoint_sharded_vs_1shard"`

	// Simulated data-plane throughput from the paper-figure harness
	// (virtual-time testbed, not wall clock).
	Fig8aMRPS       float64 `json:"fig8a_mrps"`
	Fig9SwitchMRPS  float64 `json:"fig9_switch_mrps"`
	Fig9Server8MRPS float64 `json:"fig9_server8_mrps"`
}

func summarize(r testing.BenchmarkResult) embeddedBench {
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	mops := 0.0
	if ns > 0 {
		mops = 1e3 / ns // 1e9 ns/s / ns-per-op / 1e6 ops
	}
	return embeddedBench{
		NsPerOp:     ns,
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		MopsPerSec:  mops,
		Iterations:  r.N,
	}
}

// warmManager builds a manager with locks 1..n hot and switch-resident.
func warmManager(shards, nLocks int) (*netlock.Manager, error) {
	cfg := netlock.Config{Servers: 1}
	if shards > 0 {
		cfg.Shards = shards
	}
	return warmManagerCfg(cfg, nLocks)
}

// warmManagerCfg is warmManager with full config control (the -obs mode
// toggles Config.Metrics).
func warmManagerCfg(cfg netlock.Config, nLocks int) (*netlock.Manager, error) {
	lm := netlock.New(cfg)
	ctx := context.Background()
	for l := 1; l <= nLocks; l++ {
		for i := 0; i < 100; i++ {
			g, err := lm.Acquire(ctx, uint32(l), netlock.Exclusive)
			if err != nil {
				lm.Close()
				return nil, err
			}
			g.Release()
		}
	}
	lm.PlacementTick(1)
	return lm, nil
}

func benchSerial() (testing.BenchmarkResult, error) {
	lm, err := warmManager(0, 1)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	defer lm.Close()
	ctx := context.Background()
	return testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g, err := lm.Acquire(ctx, 1, netlock.Exclusive)
			if err != nil {
				b.Error(err)
				return
			}
			g.Release()
		}
	}), nil
}

func benchParallel(shards int, disjoint bool) (testing.BenchmarkResult, error) {
	nLocks := 1
	if disjoint {
		nLocks = 2 * runtime.GOMAXPROCS(0)
		if nLocks < 8 {
			nLocks = 8
		}
	}
	lm, err := warmManager(shards, nLocks)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	defer lm.Close()
	ctx := context.Background()
	return testing.Benchmark(func(b *testing.B) {
		var next atomic.Uint32
		b.RunParallel(func(pb *testing.PB) {
			lock := uint32(1)
			if disjoint {
				lock = (next.Add(1)-1)%uint32(nLocks) + 1
			}
			for pb.Next() {
				g, err := lm.Acquire(ctx, lock, netlock.Exclusive)
				if err != nil {
					b.Error(err)
					return
				}
				g.Release()
			}
		})
	}), nil
}

func runEmbedded(out string, quick bool, seed int64) error {
	rep := embeddedReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Benchmarks: make(map[string]embeddedBench),
	}
	probe := netlock.New(netlock.Config{Servers: 1})
	rep.Shards = probe.Shards()
	probe.Close()

	type spec struct {
		name     string
		run      func() (testing.BenchmarkResult, error)
		disjoint bool
	}
	specs := []spec{
		{"embedded_acquire_release", benchSerial, false},
		{"parallel_disjoint_1shard", func() (testing.BenchmarkResult, error) { return benchParallel(1, true) }, true},
		{"parallel_disjoint_sharded", func() (testing.BenchmarkResult, error) { return benchParallel(0, true) }, true},
		{"parallel_contended_1shard", func() (testing.BenchmarkResult, error) { return benchParallel(1, false) }, false},
		{"parallel_contended_sharded", func() (testing.BenchmarkResult, error) { return benchParallel(0, false) }, false},
	}
	for _, s := range specs {
		// Best of three: scheduling noise only ever slows a run down, so
		// the fastest repetition is the closest to the true cost.
		var best embeddedBench
		for try := 0; try < 3; try++ {
			r, err := s.run()
			if err != nil {
				return fmt.Errorf("bench %s: %w", s.name, err)
			}
			got := summarize(r)
			if try == 0 || got.NsPerOp < best.NsPerOp {
				best = got
			}
		}
		rep.Benchmarks[s.name] = best
		fmt.Printf("  %-28s %10.1f ns/op  %3d allocs/op  %7.3f Mops/s\n",
			s.name, rep.Benchmarks[s.name].NsPerOp, rep.Benchmarks[s.name].AllocsPerOp,
			rep.Benchmarks[s.name].MopsPerSec)
	}
	base := rep.Benchmarks["parallel_disjoint_1shard"].NsPerOp
	sharded := rep.Benchmarks["parallel_disjoint_sharded"].NsPerOp
	if sharded > 0 {
		rep.SpeedupDisjoint = base / sharded
	}

	o := harness.Options{Quick: quick, Seed: seed}
	pts := harness.Fig8aSharedLocks(o)
	rep.Fig8aMRPS = pts[len(pts)-1].AchievedMRPS
	rows := harness.Fig9SwitchVsServer(o)
	rep.Fig9SwitchMRPS = rows[0].SwitchMRPS
	rep.Fig9Server8MRPS = rows[0].ServerMRPS[len(rows[0].ServerMRPS)-1]

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s (disjoint sharded/1shard speedup: %.2fx at GOMAXPROCS=%d, %d CPUs)\n",
		out, rep.SpeedupDisjoint, rep.GoMaxProcs, rep.NumCPU)
	return nil
}
