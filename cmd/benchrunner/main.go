// Command benchrunner regenerates the paper's evaluation figures
// (§6, Figures 8–15) on the virtual-time testbed and prints the same rows
// and series the paper plots.
//
//	benchrunner            # full-scale run of every figure
//	benchrunner -quick     # CI-scale run
//	benchrunner -fig 10    # a single figure
//	benchrunner -embedded  # embedded hot-path benches -> BENCH_embedded.json
//	benchrunner -obs       # observability overhead benches -> BENCH_obs.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"netlock/internal/harness"
)

func main() {
	quick := flag.Bool("quick", false, "reduced windows and sweep densities")
	fig := flag.String("fig", "all", "figure to run: 8a,8b,8cd,9,10,11,12a,12b,13a,13b,14a,14b,15,calib or all")
	seed := flag.Int64("seed", 1, "testbed seed")
	embedded := flag.Bool("embedded", false, "benchmark the embedded hot path and emit a JSON report instead of running figures")
	obsMode := flag.Bool("obs", false, "benchmark the observability layer's overhead (metrics off vs on) and emit a JSON report")
	out := flag.String("out", "", "output path ('-' for stdout; default BENCH_embedded.json / BENCH_obs.json by mode)")
	flag.Parse()

	if *embedded {
		path := *out
		if path == "" {
			path = "BENCH_embedded.json"
		}
		if err := runEmbedded(path, *quick, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *obsMode {
		path := *out
		if path == "" {
			path = "BENCH_obs.json"
		}
		if err := runObs(path, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			os.Exit(1)
		}
		return
	}

	o := harness.Options{Quick: *quick, Out: os.Stdout, Seed: *seed}
	figs := map[string]func(){
		"calib": func() { harness.CalibrationRun(o) },
		"8a":    func() { harness.Fig8aSharedLocks(o) },
		"8b":    func() { harness.Fig8bExclusiveNoContention(o) },
		"8cd":   func() { harness.Fig8cdExclusiveContention(o) },
		"9":     func() { harness.Fig9SwitchVsServer(o) },
		"10":    func() { harness.Fig10TPCC(o) },
		"11":    func() { harness.Fig11TPCC(o) },
		"12a":   func() { harness.Fig12aServiceDiff(o) },
		"12b":   func() { harness.Fig12bIsolation(o) },
		"13a":   func() { harness.Fig13aMemAlloc(o) },
		"13b":   func() { harness.Fig13bMemAllocCDF(o) },
		"14a":   func() { harness.Fig14aThinkTime(o) },
		"14b":   func() { harness.Fig14bAllocSweep(o) },
		"15":    func() { harness.Fig15Failure(o) },
	}
	order := []string{"calib", "8a", "8b", "8cd", "9", "10", "11", "12a", "12b", "13a", "13b", "14a", "14b", "15"}

	run := func(name string) {
		f, ok := figs[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q (have: %s)\n", name, strings.Join(order, ", "))
			os.Exit(2)
		}
		t0 := time.Now()
		f()
		fmt.Printf("  [%s done in %v]\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	if *fig == "all" {
		for _, name := range order {
			run(name)
		}
		return
	}
	for _, name := range strings.Split(*fig, ",") {
		run(strings.TrimSpace(name))
	}
}
