package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"netlock/internal/ctrlplane"
	"netlock/internal/fabric"
	"netlock/internal/obs"
	"netlock/internal/switchdp"
	"netlock/internal/transport"
)

// multirackReport is the BENCH_multirack.json document: the same
// closed-loop workload on a 1-rack fabric (baseline) and an N-rack fabric,
// both over real loopback UDP, with the per-rack grant breakdown from the
// client's shard-map routing. The scaling figure is the aggregate
// throughput win of sharding the lock space across independent racks.
type multirackReport struct {
	Generated  string `json:"generated"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"go_maxprocs"`

	DurationS float64 `json:"duration_s"`
	Racks     int     `json:"racks"`
	Shards    int     `json:"shards"`
	Chain     int     `json:"chain"`
	Workers   int     `json:"workers"`
	Locks     int     `json:"locks"`
	Mode      string  `json:"mode"`

	SingleRack fabricResult `json:"single_rack"`
	MultiRack  fabricResult `json:"multi_rack"`

	// Scaling is multi-rack aggregate MRPS over the single-rack fabric on
	// the same total offered load — the fan-out win of per-key sharding.
	Scaling float64 `json:"multirack_over_single"`
}

// fabricResult is one measured fabric run. PerRackOps indexes grants by
// the rack that issued them (from Grant.Rack), so the breakdown shows how
// evenly the shard map spread the key space.
type fabricResult struct {
	result
	Racks int `json:"racks"`
	// SwitchResident is how many of the workload's locks fit the racks'
	// fixed per-switch slot budgets; the rest take the server slow path.
	SwitchResident int      `json:"switch_resident_locks"`
	PerRackOps     []uint64 `json:"per_rack_ops"`
	MapEpoch       uint64   `json:"map_epoch"`
}

// runMultirackBench measures the closed-loop workload on a 1-rack and an
// n-rack fabric and writes the comparison as JSON.
func runMultirackBench(cfg loadConfig, path string, quick bool) error {
	racks, shards := cfg.racks, cfg.shards
	if racks < 2 {
		racks = 4
	}
	cfg.switchAddr = "" // fabric legs self-host their racks
	cfg.rate = 0
	cfg.duration = 5 * time.Second
	if quick {
		cfg.duration = 2 * time.Second
	}
	if cfg.flush == 0 {
		// Fabric frames fill on a per-rack clock, so the default
		// flush-per-egress-cycle backstop would send partial frames and
		// charge the multi-rack legs extra syscalls; a longer backstop lets
		// frames fill on both legs alike.
		cfg.flush = 2 * time.Millisecond
	}

	rep := multirackReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		DurationS:  cfg.duration.Seconds(),
		Racks:      racks,
		Shards:     shards,
		Chain:      cfg.chain,
		Workers:    cfg.clients * cfg.workers,
		Locks:      cfg.locks,
		Mode:       cfg.mode,
	}

	fmt.Fprintf(os.Stderr, "loadgen: measuring 1-rack fabric baseline (%v)...\n", cfg.duration)
	single, err := runFabricLeg(cfg, 1, shards)
	if err != nil {
		return fmt.Errorf("single-rack leg: %w", err)
	}
	fmt.Fprintf(os.Stderr, "loadgen: 1 rack:  %s\n", single.result)
	rep.SingleRack = single

	fmt.Fprintf(os.Stderr, "loadgen: measuring %d-rack fabric (%v)...\n", racks, cfg.duration)
	multi, err := runFabricLeg(cfg, racks, shards)
	if err != nil {
		return fmt.Errorf("%d-rack leg: %w", racks, err)
	}
	fmt.Fprintf(os.Stderr, "loadgen: %d racks: %s racks=%v\n", racks, multi.result, multi.PerRackOps)
	rep.MultiRack = multi
	if single.MRPS > 0 {
		rep.Scaling = multi.MRPS / single.MRPS
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loadgen: wrote %s (%d racks %.2fx one rack)\n", path, racks, rep.Scaling)
	return nil
}

// switchSlotBudget is the fixed per-switch shared-queue capacity the
// self-hosted fabric models: a switch's SRAM does not grow because the
// fabric has fewer racks, so every leg gets the same per-switch budget
// and what scales with racks is the AGGREGATE switch memory. Locks that
// do not fit a rack's budget stay server-resident and take the slow path
// through a lock server — the paper's memory-size/throughput trade,
// where adding racks raises the fast-path fraction.
const switchSlotBudget = 16384

// selfHostFabric brings up an in-process racks-rack fabric over real
// loopback UDP with locks 1..cfg.locks preinstalled switch-resident on
// their map-assigned home racks until each rack's fixed slot budget is
// exhausted (mirroring cmd/netlockd -fabric). It returns the fabric and
// the count of locks that went switch-resident.
func selfHostFabric(cfg loadConfig, racks, shards int) (*fabric.Fabric, int, error) {
	maxResident := switchSlotBudget / int(cfg.slotsPerLock)
	f, err := fabric.New(fabric.Config{
		Racks:  racks,
		Shards: shards,
		Rack: ctrlplane.Config{
			Switches: cfg.chain,
			Servers:  cfg.servers,
			DataPlane: switchdp.Config{
				MaxLocks:   nextPow2(maxResident + 1),
				TotalSlots: switchSlotBudget,
				Priorities: 1,
			},
		},
	})
	if err != nil {
		return nil, 0, err
	}
	m := f.Controller().Map()
	offs := make([]uint64, racks)
	resident := 0
	for id := uint32(1); id <= uint32(cfg.locks); id++ {
		rk := m.RackOf(id)
		if offs[rk]+cfg.slotsPerLock > switchSlotBudget {
			continue // rack budget exhausted: stays server-resident
		}
		regions := []switchdp.Region{{Left: offs[rk], Right: offs[rk] + cfg.slotsPerLock}}
		if err := f.Rack(rk).Controller().InstallLock(id, regions); err != nil {
			continue // lock-table entries exhausted: stays server-resident
		}
		offs[rk] += cfg.slotsPerLock
		resident++
	}
	return f, resident, nil
}

// runFabricLeg runs the closed-loop workload against a fresh racks-rack
// fabric.
func runFabricLeg(cfg loadConfig, racks, shards int) (fabricResult, error) {
	f, resident, err := selfHostFabric(cfg, racks, shards)
	if err != nil {
		return fabricResult{}, err
	}
	defer f.Close()

	reg := obs.New(obs.Config{Stripes: 1 + cfg.clients})
	o := reg.Stripe(0)
	var clients []*transport.Client
	for i := 0; i < cfg.clients; i++ {
		c, err := f.NewClient(transport.ClientConfig{
			MaxBatch:      cfg.batch,
			FlushInterval: cfg.flush,
			Obs:           reg.Stripe(1 + i),
		})
		if err != nil {
			return fabricResult{}, fmt.Errorf("client %d: %w", i, err)
		}
		clients = append(clients, c)
	}

	var done, errs atomic.Uint64
	rackOps := make([]atomic.Uint64, racks)
	ctx, cancel := context.WithTimeout(context.Background(), cfg.duration)
	defer cancel()

	start := time.Now()
	var wg sync.WaitGroup
	for ci, c := range clients {
		for w := 0; w < cfg.workers; w++ {
			wg.Add(1)
			go func(c *transport.Client, seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for ctx.Err() == nil {
					lock := uint32(rng.Intn(cfg.locks)) + 1
					s := time.Now()
					g, err := c.Acquire(ctx, lock, pickMode(cfg.mode, rng))
					if err != nil {
						if ctx.Err() != nil {
							return
						}
						errs.Add(1)
						continue
					}
					o.Observe(obs.StageAcquireE2E, time.Since(s).Nanoseconds())
					done.Add(1)
					if rk := g.Rack(); rk >= 0 && rk < racks {
						rackOps[rk].Add(1)
					}
					g.Release()
				}
			}(c, int64(ci*cfg.workers+w))
		}
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	sn := reg.Snapshot()
	e2e := sn.Stage(obs.StageAcquireE2E)
	res := fabricResult{
		result: result{
			Ops:       done.Load(),
			Errors:    errs.Load(),
			Seconds:   elapsed,
			MRPS:      float64(done.Load()) / elapsed / 1e6,
			P50Us:     float64(e2e.Percentile(0.50)) / 1e3,
			P99Us:     float64(e2e.Percentile(0.99)) / 1e3,
			FramesOut: sn.Counter(obs.CtrFramesOut),
			AvgBatch:  sn.Stage(obs.StageEgressBatch).Mean(),
		},
		Racks:          racks,
		SwitchResident: resident,
		MapEpoch:       f.Controller().Epoch(),
	}
	for i := range rackOps {
		res.PerRackOps = append(res.PerRackOps, rackOps[i].Load())
	}
	if res.Ops == 0 {
		return res, fmt.Errorf("no operations completed (%d errors)", res.Errors)
	}
	return res, nil
}
