// The rebalance bench measures what the online lock-placement rebalancer is
// for: a capacity-limited switch whose hot set drifts mid-run. Both legs run
// the same Zipf-skewed closed loop over a lock space four times larger than
// the switch, and rotate the hot set to a disjoint pool at the halfway mark.
//
//   - static: the phase-0 hot set is preinstalled switch-resident (the best
//     placement a one-shot allocator can pick) and never moves. After the
//     rotation every hot acquire detours through a lock server.
//   - rebalanced: nothing is preinstalled; the rebalance loop earns every
//     residency from live demand and re-promotes the new hot set after the
//     rotation.
//
// The headline number is TailGain: rebalanced tail-window throughput over
// static, i.e. how much of the switch's fast path the loop wins back once
// the static placement has gone stale.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"netlock/internal/ctrlplane"
	"netlock/internal/obs"
	"netlock/internal/rebalance"
	"netlock/internal/switchdp"
	"netlock/internal/transport"
)

// rebalanceReport is the BENCH_rebalance.json document.
type rebalanceReport struct {
	Generated  string `json:"generated"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"go_maxprocs"`

	DurationS      float64 `json:"duration_s"`
	Workers        int     `json:"workers"`
	Locks          int     `json:"locks"`
	HotLocks       int     `json:"hot_locks"`
	SwitchCapacity int     `json:"switch_capacity_locks"`
	RotateAtS      float64 `json:"rotate_at_s"`
	RebalanceMs    float64 `json:"rebalance_interval_ms"`

	Static     driftResult `json:"static_placement"`
	Rebalanced driftResult `json:"rebalanced"`

	// TailGain is rebalanced tail-window MRPS over static: the fast path
	// recovered by moving the new hot set back into the switch.
	TailGain float64 `json:"tail_gain_rebalanced_over_static"`
}

// driftResult is one leg, sampled in fixed buckets around the rotation.
type driftResult struct {
	result
	BucketMs       float64 `json:"bucket_ms"`
	PreRotateMRPS  float64 `json:"pre_rotate_mrps"`
	PostRotateMRPS float64 `json:"post_rotate_mrps"`
	// TailMRPS is the mean over the last quarter of the run: the steady
	// state after the placement (static or re-learned) has settled.
	TailMRPS     float64 `json:"tail_mrps"`
	Promotes     uint64  `json:"promotes"`
	Demotions    uint64  `json:"demotions"`
	MoveFailures uint64  `json:"move_failures"`
}

// runRebalanceBench measures the static and rebalanced legs on fresh racks
// and writes the comparison as JSON.
func runRebalanceBench(cfg loadConfig, path string, quick bool) error {
	cfg.switchAddr = "" // the bench owns the rack: placement is the variable
	cfg.rate = 0
	cfg.duration = 10 * time.Second
	if quick {
		cfg.duration = 4 * time.Second
	}
	if cfg.rebalanceEvery == 0 {
		cfg.rebalanceEvery = 25 * time.Millisecond
	}
	if cfg.rebalanceBudget == 0 {
		cfg.rebalanceBudget = 8
	}
	hotN := cfg.locks / 4
	if hotN < 4 {
		hotN = 4
	}
	if cfg.locks < 2*hotN {
		cfg.locks = 2 * hotN // two disjoint hot pools must fit the ID space
	}

	rep := rebalanceReport{
		Generated:      time.Now().UTC().Format(time.RFC3339),
		GoVersion:      runtime.Version(),
		NumCPU:         runtime.NumCPU(),
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		DurationS:      cfg.duration.Seconds(),
		Workers:        cfg.workers,
		Locks:          cfg.locks,
		HotLocks:       hotN,
		SwitchCapacity: hotN,
		RotateAtS:      (cfg.duration / 2).Seconds(),
		RebalanceMs:    float64(cfg.rebalanceEvery) / 1e6,
	}

	fmt.Fprintf(os.Stderr, "loadgen: measuring static placement with hot-set rotation at %v (%v)...\n",
		cfg.duration/2, cfg.duration)
	static, err := runDriftLeg(cfg, hotN, false)
	if err != nil {
		return fmt.Errorf("static leg: %w", err)
	}
	fmt.Fprintf(os.Stderr, "loadgen: static: %s tail=%.3f Mops/s\n", static.result, static.TailMRPS)
	rep.Static = static

	fmt.Fprintf(os.Stderr, "loadgen: measuring rebalanced (loop every %v, budget %d)...\n",
		cfg.rebalanceEvery, cfg.rebalanceBudget)
	reb, err := runDriftLeg(cfg, hotN, true)
	if err != nil {
		return fmt.Errorf("rebalanced leg: %w", err)
	}
	fmt.Fprintf(os.Stderr, "loadgen: rebalanced: %s tail=%.3f Mops/s (%d promotes, %d demotes, %d failed moves)\n",
		reb.result, reb.TailMRPS, reb.Promotes, reb.Demotions, reb.MoveFailures)
	rep.Rebalanced = reb
	if static.TailMRPS > 0 {
		rep.TailGain = reb.TailMRPS / static.TailMRPS
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loadgen: wrote %s (tail gain %.2fx)\n", path, rep.TailGain)
	return nil
}

// runDriftLeg runs the Zipf closed loop on a switch sized for hotN locks,
// rotating the hot set to the disjoint pool at the halfway mark. With
// rebalanced set, the online loop manages placement; otherwise the phase-0
// hot set is preinstalled and placement is frozen.
func runDriftLeg(cfg loadConfig, hotN int, rebalanced bool) (driftResult, error) {
	var locks []ctrlplane.SwitchLock
	if !rebalanced {
		for id := 1; id <= hotN; id++ {
			locks = append(locks, ctrlplane.SwitchLock{ID: uint32(id), Slots: int(cfg.slotsPerLock)})
		}
	}
	tp, err := ctrlplane.New(ctrlplane.Config{
		Switches: cfg.chain,
		Servers:  cfg.servers,
		DataPlane: switchdp.Config{
			MaxLocks:   nextPow2(hotN + 1),
			TotalSlots: int(cfg.slotsPerLock) * (hotN + 1),
			Priorities: 1,
		},
		SwitchLocks: locks,
	})
	if err != nil {
		return driftResult{}, err
	}
	defer tp.Close()

	var loop *rebalance.Loop
	if rebalanced {
		// Default sizing: the planner's SlotHeadroom keeps admission margin
		// above measured peak concurrency, so no per-benchmark slot floor is
		// needed to stop saturated hot locks detouring through the server
		// overflow path.
		loop = rebalance.New(tp.Controller().Mover(), rebalance.Config{
			Interval: cfg.rebalanceEvery,
			Budget:   cfg.rebalanceBudget,
		})
		loop.Start()
		defer loop.Stop()
	}

	reg := obs.New(obs.Config{Stripes: 1 + cfg.clients})
	o := reg.Stripe(0)
	var clients []*transport.Client
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	for i := 0; i < cfg.clients; i++ {
		c, err := tp.NewClient(transport.ClientConfig{
			MaxBatch:      cfg.batch,
			FlushInterval: cfg.flush,
			// Acquires caught mid-move are answered with a redirect or not at
			// all; a tight retransmit keeps a move from stranding a worker
			// for the default (second-scale) retry.
			RetryInterval: 20 * time.Millisecond,
			Obs:           reg.Stripe(1 + i),
		})
		if err != nil {
			return driftResult{}, fmt.Errorf("client %d: %w", i, err)
		}
		clients = append(clients, c)
	}

	var done, errs atomic.Uint64
	var phase atomic.Int32
	ctx, cancel := context.WithTimeout(context.Background(), cfg.duration)
	defer cancel()

	const bucket = 50 * time.Millisecond
	var buckets []uint64
	stop := make(chan struct{})
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		t := time.NewTicker(bucket)
		defer t.Stop()
		last := uint64(0)
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				cur := done.Load()
				buckets = append(buckets, cur-last)
				last = cur
			}
		}
	}()

	rotateAt := cfg.duration / 2
	rotBucket := int(rotateAt / bucket)
	timer := time.AfterFunc(rotateAt, func() { phase.Store(1) })
	defer timer.Stop()

	start := time.Now()
	var wg sync.WaitGroup
	for ci, c := range clients {
		for w := 0; w < cfg.workers; w++ {
			wg.Add(1)
			go func(c *transport.Client, seed int64) {
				defer wg.Done()
				hotLoop(ctx, c, cfg, hotN, &phase, o, &done, &errs, seed)
			}(c, int64(ci*cfg.workers+w))
		}
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	close(stop)
	sampler.Wait()

	sn := reg.Snapshot()
	e2e := sn.Stage(obs.StageAcquireE2E)
	batchHist := sn.Stage(obs.StageEgressBatch)
	res := driftResult{
		result: result{
			Ops:       done.Load(),
			Errors:    errs.Load(),
			Seconds:   elapsed,
			MRPS:      float64(done.Load()) / elapsed / 1e6,
			P50Us:     float64(e2e.Percentile(0.50)) / 1e3,
			P99Us:     float64(e2e.Percentile(0.99)) / 1e3,
			FramesOut: sn.Counter(obs.CtrFramesOut),
			AvgBatch:  batchHist.Mean(),
		},
		BucketMs: bucket.Seconds() * 1e3,
	}
	if loop != nil {
		st := loop.Stats()
		res.Promotes, res.Demotions, res.MoveFailures = st.Promotions, st.Demotions, st.Failures
	}
	if res.Ops == 0 {
		return res, fmt.Errorf("no operations completed (%d errors)", res.Errors)
	}
	if rotBucket < 2 || rotBucket >= len(buckets) {
		return res, fmt.Errorf("run too short for rotation at bucket %d of %d", rotBucket, len(buckets))
	}
	mean := func(bs []uint64) float64 {
		var sum uint64
		for _, b := range bs {
			sum += b
		}
		return float64(sum) / float64(len(bs)) / bucket.Seconds() / 1e6
	}
	// Skip the first bucket (warmup) for the pre-rotation mean.
	res.PreRotateMRPS = mean(buckets[1:rotBucket])
	res.PostRotateMRPS = mean(buckets[rotBucket:])
	tail := buckets[len(buckets)-(len(buckets)-rotBucket)/2:]
	res.TailMRPS = mean(tail)
	return res, nil
}

// hotLoop is closedLoop with a rotating Zipf hot set: each acquire draws
// from the current phase's disjoint pool of hotN locks, skewed toward its
// head, so residency demand concentrates and then drifts all at once.
func hotLoop(ctx context.Context, c *transport.Client, cfg loadConfig, hotN int, phase *atomic.Int32, o *obs.Stripe, done, errs *atomic.Uint64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(hotN-1))
	for ctx.Err() == nil {
		base := uint32(1)
		if phase.Load() > 0 {
			base = uint32(hotN + 1)
		}
		lock := base + uint32(zipf.Uint64())
		start := time.Now()
		g, err := c.Acquire(ctx, lock, pickMode(cfg.mode, rng))
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			errs.Add(1)
			continue
		}
		o.Observe(obs.StageAcquireE2E, time.Since(start).Nanoseconds())
		done.Add(1)
		g.Release()
	}
}
