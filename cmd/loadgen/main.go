// Command loadgen drives a NetLock rack with acquire/release load through
// the batched, multiplexed UDP transport and reports throughput and
// end-to-end acquire latency live.
//
// By default it self-hosts a rack in-process (one switch, -servers lock
// servers, locks 1..-locks switch-resident) and runs a closed loop of
// -clients x -workers workers, each holding one acquire in flight:
//
//	loadgen -duration 10s -workers 128 -locks 64
//
// Point it at an external rack (cmd/netlockd) with -switch, or switch to an
// open loop with -rate, which submits at a fixed aggregate ops/sec
// independent of completions:
//
//	loadgen -switch 127.0.0.1:9000 -rate 500000 -duration 30s
//
// -batch 1 disables client-side batching (one datagram per op), which is
// the baseline the batched transport is measured against:
//
//	loadgen -compare            # batched vs unbatched -> BENCH_transport.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"netlock"
	"netlock/internal/ctrlplane"
	"netlock/internal/fabric"
	"netlock/internal/obs"
	"netlock/internal/rebalance"
	"netlock/internal/switchdp"
	"netlock/internal/transport"
)

func main() {
	var cfg loadConfig
	flag.StringVar(&cfg.switchAddr, "switch", "", "external switch address(es), comma-separated chain members head first (empty: self-host a rack in-process)")
	flag.IntVar(&cfg.servers, "servers", 2, "self-hosted rack: number of lock servers")
	flag.IntVar(&cfg.chain, "chain", 1, "self-hosted rack: switch replication chain length (1-3)")
	flag.IntVar(&cfg.locks, "locks", 64, "lock ID space; self-hosted racks preinstall them in the switch")
	flag.Uint64Var(&cfg.slotsPerLock, "slots-per-lock", 64, "self-hosted rack: queue slots per preinstalled lock")
	flag.IntVar(&cfg.clients, "clients", 1, "client sockets; workers are spread across them")
	flag.IntVar(&cfg.workers, "workers", 128, "closed-loop workers (in-flight acquires) per client")
	flag.StringVar(&cfg.mode, "mode", "shared", "lock mode: shared, exclusive, or mixed (50/50)")
	flag.Float64Var(&cfg.rate, "rate", 0, "open-loop aggregate ops/sec (0: closed loop)")
	flag.DurationVar(&cfg.duration, "duration", 10*time.Second, "measurement duration")
	flag.IntVar(&cfg.batch, "batch", 0, "client MaxBatch: 0 = full frames, 1 = unbatched baseline")
	flag.DurationVar(&cfg.flush, "flush", 0, "client flush interval (0: transport default)")
	flag.DurationVar(&cfg.rebalanceEvery, "rebalance", 0, "self-hosted rack: tick the online lock-placement rebalancer at this interval (0 disables; disables preinstall so residency is earned)")
	flag.IntVar(&cfg.rebalanceBudget, "rebalance-budget", 0, "max live migrations per rebalance tick (0: rebalance default)")
	report := flag.Duration("report", time.Second, "live readout interval (0 disables)")
	compare := flag.Bool("compare", false, "run batched vs unbatched back to back and emit a JSON report")
	rebalanceBench := flag.Bool("rebalance-bench", false, "measure hot-set drift with static placement vs the online rebalancer and emit a JSON report")
	multirackBench := flag.Bool("multirack-bench", false, "measure a 1-rack vs -racks fabric on the same workload and emit a JSON report")
	flag.IntVar(&cfg.racks, "racks", 1, "self-host a multi-rack fabric with this many racks (1: plain single rack; -multirack-bench defaults to 4)")
	flag.IntVar(&cfg.shards, "shards", 64, "fabric shard-map granularity (with -racks > 1)")
	out := flag.String("out", "", "JSON output path for -compare/-workload ('-' for stdout)")
	quick := flag.Bool("quick", false, "shorter -compare run")
	failover := flag.Bool("failover", false, "measure head-failure recovery on a 3-member chain vs a single-switch baseline and emit a JSON report")
	workload := flag.String("workload", "", "run a named adversarial scenario from internal/scenario ('all' for the full suite); skips the load loop")
	plane := flag.String("plane", "both", "scenario plane: embedded, udp, or both")
	seed := flag.Int64("seed", 1, "scenario seed (replays a failing run)")
	short := flag.Bool("short", false, "CI-sized scenario configuration")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	flag.Parse()

	if *cpuprofile != "" {
		pf, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if *workload != "" {
		path := *out
		if path == "" {
			path = "BENCH_scenarios.json"
		}
		if err := runScenarios(*workload, *plane, *seed, *short, path); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *compare {
		path := *out
		if path == "" {
			path = "BENCH_transport.json"
		}
		if err := runCompare(cfg, path, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *failover {
		path := *out
		if path == "" {
			path = "BENCH_failover.json"
		}
		if err := runFailover(cfg, path, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *multirackBench {
		path := *out
		if path == "" {
			path = "BENCH_multirack.json"
		}
		if err := runMultirackBench(cfg, path, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *rebalanceBench {
		path := *out
		if path == "" {
			path = "BENCH_rebalance.json"
		}
		if err := runRebalanceBench(cfg, path, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	res, err := runLoad(cfg, *report)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("loadgen: %s\n", res)
}

type loadConfig struct {
	switchAddr      string
	chain           int
	servers         int
	racks           int
	shards          int
	locks           int
	slotsPerLock    uint64
	clients         int
	workers         int
	mode            string
	rate            float64
	duration        time.Duration
	batch           int
	flush           time.Duration
	rebalanceEvery  time.Duration
	rebalanceBudget int
}

// result is one measured run.
type result struct {
	Ops       uint64  `json:"ops"`
	Errors    uint64  `json:"errors"`
	Seconds   float64 `json:"seconds"`
	MRPS      float64 `json:"mrps"`
	P50Us     float64 `json:"acquire_p50_us"`
	P99Us     float64 `json:"acquire_p99_us"`
	FramesOut uint64  `json:"client_frames_out"`
	AvgBatch  float64 `json:"client_avg_batch_ops"`
}

func (r result) String() string {
	return fmt.Sprintf("%.3f Mops/s (%d ops, %d errs, %.1fs) p50=%.0fus p99=%.0fus avg batch %.1f ops/frame",
		r.MRPS, r.Ops, r.Errors, r.Seconds, r.P50Us, r.P99Us, r.AvgBatch)
}

// selfHost brings up an in-process rack through the Topology API: a
// cfg.chain-member switch chain over real loopback UDP, cfg.servers lock
// servers, and locks 1..cfg.locks preinstalled switch-resident. With the
// rebalancer enabled nothing is preinstalled: every residency is earned
// through a live migration planned by the loop.
func selfHost(cfg loadConfig) (*ctrlplane.Topology, error) {
	var locks []ctrlplane.SwitchLock
	if cfg.rebalanceEvery == 0 {
		locks = make([]ctrlplane.SwitchLock, 0, cfg.locks)
		for id := 1; id <= cfg.locks; id++ {
			locks = append(locks, ctrlplane.SwitchLock{ID: uint32(id), Slots: int(cfg.slotsPerLock)})
		}
	}
	return ctrlplane.New(ctrlplane.Config{
		Switches: cfg.chain,
		Servers:  cfg.servers,
		DataPlane: switchdp.Config{
			MaxLocks:   nextPow2(cfg.locks + 1),
			TotalSlots: int(cfg.slotsPerLock) * (cfg.locks + 1),
			Priorities: 1,
		},
		SwitchLocks: locks,
	})
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// runLoad executes one measured run against cfg's rack (self-hosted when
// switchAddr is empty; a fabric of cfg.racks racks when racks > 1) and
// returns the aggregate result.
func runLoad(cfg loadConfig, report time.Duration) (result, error) {
	var tp *ctrlplane.Topology
	var fab *fabric.Fabric
	if cfg.switchAddr == "" && cfg.racks > 1 {
		var err error
		fab, _, err = selfHostFabric(cfg, cfg.racks, cfg.shards)
		if err != nil {
			return result{}, err
		}
		defer fab.Close()
	} else if cfg.switchAddr == "" {
		var err error
		tp, err = selfHost(cfg)
		if err != nil {
			return result{}, err
		}
		defer tp.Close()
		if cfg.rebalanceEvery > 0 {
			loop := rebalance.New(tp.Controller().Mover(), rebalance.Config{
				Interval: cfg.rebalanceEvery,
				Budget:   cfg.rebalanceBudget,
			})
			loop.Start()
			defer loop.Stop()
		}
	}

	// One stripe per client socket for egress frame/batch counters; the
	// loadgen-side acquire latency histogram lives in stripe 0.
	reg := obs.New(obs.Config{Stripes: 1 + cfg.clients})
	o := reg.Stripe(0)

	var clients []*transport.Client
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	for i := 0; i < cfg.clients; i++ {
		ccfg := transport.ClientConfig{
			MaxBatch:      cfg.batch,
			FlushInterval: cfg.flush,
			Obs:           reg.Stripe(1 + i),
		}
		var c *transport.Client
		var err error
		if fab != nil {
			c, err = fab.NewClient(ccfg)
		} else if tp != nil {
			c, err = tp.NewClient(ccfg)
		} else {
			// External rack: -switch lists the chain members head first.
			ccfg.Switches = strings.Split(cfg.switchAddr, ",")
			c, err = transport.NewClientConfig(ccfg)
		}
		if err != nil {
			return result{}, fmt.Errorf("client %d: %w", i, err)
		}
		clients = append(clients, c)
	}

	var done, errs atomic.Uint64
	ctx, cancel := context.WithTimeout(context.Background(), cfg.duration)
	defer cancel()

	stop := make(chan struct{})
	if report > 0 {
		go readout(reg, &done, report, stop)
	}

	start := time.Now()
	var wg sync.WaitGroup
	if cfg.rate > 0 {
		for i, c := range clients {
			wg.Add(1)
			go func(c *transport.Client, seed int64) {
				defer wg.Done()
				openLoop(ctx, c, cfg, cfg.rate/float64(len(clients)), o, &done, &errs, seed)
			}(c, int64(i))
		}
	} else {
		for ci, c := range clients {
			for w := 0; w < cfg.workers; w++ {
				wg.Add(1)
				go func(c *transport.Client, seed int64) {
					defer wg.Done()
					closedLoop(ctx, c, cfg, o, &done, &errs, seed)
				}(c, int64(ci*cfg.workers+w))
			}
		}
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	close(stop)

	sn := reg.Snapshot()
	e2e := sn.Stage(obs.StageAcquireE2E)
	batchHist := sn.Stage(obs.StageEgressBatch)
	res := result{
		Ops:       done.Load(),
		Errors:    errs.Load(),
		Seconds:   elapsed,
		MRPS:      float64(done.Load()) / elapsed / 1e6,
		P50Us:     float64(e2e.Percentile(0.50)) / 1e3,
		P99Us:     float64(e2e.Percentile(0.99)) / 1e3,
		FramesOut: sn.Counter(obs.CtrFramesOut),
		AvgBatch:  batchHist.Mean(),
	}
	if res.Ops == 0 {
		return res, fmt.Errorf("no operations completed (%d errors)", res.Errors)
	}
	return res, nil
}

// pickMode resolves the per-op lock mode for worker rng.
func pickMode(mode string, rng *rand.Rand) netlock.Mode {
	switch mode {
	case "exclusive":
		return netlock.Exclusive
	case "mixed":
		if rng.Intn(2) == 0 {
			return netlock.Exclusive
		}
		return netlock.Shared
	default:
		return netlock.Shared
	}
}

// closedLoop keeps exactly one acquire in flight: acquire, record, release,
// repeat until ctx expires.
func closedLoop(ctx context.Context, c *transport.Client, cfg loadConfig, o *obs.Stripe, done, errs *atomic.Uint64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for ctx.Err() == nil {
		lock := uint32(rng.Intn(cfg.locks)) + 1
		start := time.Now()
		g, err := c.Acquire(ctx, lock, pickMode(cfg.mode, rng))
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			errs.Add(1)
			continue
		}
		o.Observe(obs.StageAcquireE2E, time.Since(start).Nanoseconds())
		done.Add(1)
		g.Release()
	}
}

// openLoop submits acquires at a fixed rate regardless of completions,
// releasing each grant from its completion callback. Submission happens in
// 1ms slices so high rates do not need a per-op timer; when the transport
// cannot keep up, the loop sheds load beyond maxInflight and counts the
// shed ops as errors (an open-loop generator must not silently turn into a
// closed loop by blocking).
func openLoop(ctx context.Context, c *transport.Client, cfg loadConfig, rate float64, o *obs.Stripe, done, errs *atomic.Uint64, seed int64) {
	const maxInflight = 65536
	var inflight atomic.Int64
	rng := rand.New(rand.NewSource(seed))
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	started := time.Now()
	submitted := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		// Pace against wall clock, not tick count: the ticker drops ticks
		// under load, and a tick-counting pacer would silently undershoot.
		n := int(rate*time.Since(started).Seconds()) - submitted
		submitted += n
		for i := 0; i < n; i++ {
			if inflight.Load() >= maxInflight {
				errs.Add(1)
				continue
			}
			lock := uint32(rng.Intn(cfg.locks)) + 1
			start := time.Now()
			inflight.Add(1)
			err := c.AcquireFunc(ctx, lock, pickMode(cfg.mode, rng), func(g *transport.Grant, err error) {
				inflight.Add(-1)
				if err != nil {
					if ctx.Err() == nil {
						errs.Add(1)
					}
					return
				}
				o.Observe(obs.StageAcquireE2E, time.Since(start).Nanoseconds())
				done.Add(1)
				g.Release()
			})
			if err != nil {
				inflight.Add(-1)
				if ctx.Err() != nil {
					return
				}
				errs.Add(1)
			}
		}
	}
}

// readout prints one live line per interval: instantaneous throughput plus
// cumulative latency percentiles and egress batch factor.
func readout(reg *obs.Registry, done *atomic.Uint64, every time.Duration, stop chan struct{}) {
	t := time.NewTicker(every)
	defer t.Stop()
	last := uint64(0)
	started := time.Now()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		cur := done.Load()
		sn := reg.Snapshot()
		e2e := sn.Stage(obs.StageAcquireE2E)
		fmt.Printf("t=%4.0fs %8.3f Mops/s  total=%d  p50=%.0fus p99=%.0fus  batch=%.1f ops/frame\n",
			time.Since(started).Seconds(),
			float64(cur-last)/every.Seconds()/1e6,
			cur,
			float64(e2e.Percentile(0.50))/1e3,
			float64(e2e.Percentile(0.99))/1e3,
			sn.Stage(obs.StageEgressBatch).Mean())
		last = cur
	}
}

// compareReport is the BENCH_transport.json document.
type compareReport struct {
	Generated  string `json:"generated"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"go_maxprocs"`

	DurationS float64 `json:"duration_s"`
	Clients   int     `json:"clients"`
	Workers   int     `json:"workers"`
	Locks     int     `json:"locks"`
	Mode      string  `json:"mode"`

	Unbatched result `json:"unbatched"`
	Batched   result `json:"batched"`

	// SpeedupBatched is batched MRPS over unbatched MRPS on the same
	// closed-loop workload — the syscall-amortization win of batch frames.
	SpeedupBatched float64 `json:"speedup_batched_vs_unbatched"`
}

// runCompare measures the same closed-loop workload unbatched (MaxBatch 1)
// and batched (full frames) on fresh self-hosted racks and writes the
// comparison as JSON.
func runCompare(cfg loadConfig, path string, quick bool) error {
	cfg.switchAddr = "" // comparison is only meaningful on identical racks
	cfg.rate = 0
	cfg.rebalanceEvery = 0 // both legs run the static preinstalled placement
	cfg.duration = 5 * time.Second
	if quick {
		cfg.duration = 2 * time.Second
	}

	legs := []struct {
		name  string
		batch int
		res   *result
	}{{"unbatched", 1, nil}, {"batched", 0, nil}}
	rep := compareReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		DurationS:  cfg.duration.Seconds(),
		Clients:    cfg.clients,
		Workers:    cfg.workers,
		Locks:      cfg.locks,
		Mode:       cfg.mode,
	}
	for i := range legs {
		c := cfg
		c.batch = legs[i].batch
		fmt.Fprintf(os.Stderr, "loadgen: measuring %s (%v)...\n", legs[i].name, c.duration)
		res, err := runLoad(c, 0)
		if err != nil {
			return fmt.Errorf("%s leg: %w", legs[i].name, err)
		}
		fmt.Fprintf(os.Stderr, "loadgen: %s: %s\n", legs[i].name, res)
		legs[i].res = &res
	}
	rep.Unbatched, rep.Batched = *legs[0].res, *legs[1].res
	if rep.Unbatched.MRPS > 0 {
		rep.SpeedupBatched = rep.Batched.MRPS / rep.Unbatched.MRPS
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loadgen: wrote %s (batched %.2fx unbatched)\n", path, rep.SpeedupBatched)
	return nil
}

// failoverReport is the BENCH_failover.json document: the same closed-loop
// workload on an unreplicated switch (baseline) and on a 3-member chain
// whose head is killed mid-run.
type failoverReport struct {
	Generated  string `json:"generated"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"go_maxprocs"`

	DurationS float64 `json:"duration_s"`
	Workers   int     `json:"workers"`
	Locks     int     `json:"locks"`
	Mode      string  `json:"mode"`

	Baseline result         `json:"baseline_single_switch"`
	Chain3   failoverResult `json:"failover_chain3"`

	// ChainOverhead is chain-3 steady-state (pre-kill) MRPS over the
	// single-switch baseline — the replication tax.
	ChainOverhead float64 `json:"chain3_pre_kill_over_baseline"`
}

// failoverResult is one chain run with a mid-run head kill, sampled in
// fixed buckets so the dip and recovery are visible.
type failoverResult struct {
	result
	KillAtS      float64 `json:"kill_at_s"`
	BucketMs     float64 `json:"bucket_ms"`
	PreKillMRPS  float64 `json:"pre_kill_mrps"`
	PostKillMRPS float64 `json:"post_kill_mrps"`
	// DipFrac is the worst post-kill bucket over the pre-kill mean (0 = a
	// full stall, 1 = no visible dip).
	DipFrac float64 `json:"throughput_dip_frac"`
	// RecoveryMs is the time from the kill until the first bucket back at
	// >= 80% of the pre-kill mean; -1 if the run never recovered.
	RecoveryMs float64 `json:"recovery_ms"`
	EpochAfter uint64  `json:"epoch_after"`
}

// runFailover measures the baseline and the head-kill chain run on fresh
// self-hosted racks and writes the comparison as JSON.
func runFailover(cfg loadConfig, path string, quick bool) error {
	cfg.switchAddr = "" // failover is a self-hosted controller experiment
	cfg.rate = 0
	cfg.rebalanceEvery = 0 // both legs run the static preinstalled placement
	cfg.duration = 10 * time.Second
	if quick {
		cfg.duration = 4 * time.Second
	}

	rep := failoverReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		DurationS:  cfg.duration.Seconds(),
		Workers:    cfg.workers,
		Locks:      cfg.locks,
		Mode:       cfg.mode,
	}

	base := cfg
	base.chain = 1
	fmt.Fprintf(os.Stderr, "loadgen: measuring single-switch baseline (%v)...\n", base.duration)
	baseline, err := runLoad(base, 0)
	if err != nil {
		return fmt.Errorf("baseline leg: %w", err)
	}
	fmt.Fprintf(os.Stderr, "loadgen: baseline: %s\n", baseline)
	rep.Baseline = baseline

	fo := cfg
	fo.chain = 3
	fmt.Fprintf(os.Stderr, "loadgen: measuring 3-chain with head kill at %v...\n", fo.duration/2)
	foRes, err := runFailoverLeg(fo)
	if err != nil {
		return fmt.Errorf("failover leg: %w", err)
	}
	fmt.Fprintf(os.Stderr, "loadgen: chain3: %s kill@%.1fs dip=%.2f recovery=%.0fms\n",
		foRes.result, foRes.KillAtS, foRes.DipFrac, foRes.RecoveryMs)
	rep.Chain3 = foRes
	if baseline.MRPS > 0 {
		rep.ChainOverhead = foRes.PreKillMRPS / baseline.MRPS
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loadgen: wrote %s\n", path)
	return nil
}

// runFailoverLeg runs the closed-loop workload on a cfg.chain rack, kills
// the chain head at the halfway mark, and reports per-bucket throughput
// around the kill.
func runFailoverLeg(cfg loadConfig) (failoverResult, error) {
	tp, err := selfHost(cfg)
	if err != nil {
		return failoverResult{}, err
	}
	defer tp.Close()

	reg := obs.New(obs.Config{Stripes: 1 + cfg.clients})
	o := reg.Stripe(0)
	var clients []*transport.Client
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	for i := 0; i < cfg.clients; i++ {
		c, err := tp.NewClient(transport.ClientConfig{
			MaxBatch:      cfg.batch,
			FlushInterval: cfg.flush,
			RetryInterval: 20 * time.Millisecond,
			Obs:           reg.Stripe(1 + i),
		})
		if err != nil {
			return failoverResult{}, fmt.Errorf("client %d: %w", i, err)
		}
		clients = append(clients, c)
	}

	var done, errs atomic.Uint64
	ctx, cancel := context.WithTimeout(context.Background(), cfg.duration)
	defer cancel()

	// Sample completed ops in fixed buckets so the kill's dip is visible.
	const bucket = 50 * time.Millisecond
	var buckets []uint64
	stop := make(chan struct{})
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		t := time.NewTicker(bucket)
		defer t.Stop()
		last := uint64(0)
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				cur := done.Load()
				buckets = append(buckets, cur-last)
				last = cur
			}
		}
	}()

	killAt := cfg.duration / 2
	killBucket := int(killAt / bucket)
	killErr := make(chan error, 1)
	timer := time.AfterFunc(killAt, func() { killErr <- tp.Controller().FailHead() })
	defer timer.Stop()

	start := time.Now()
	var wg sync.WaitGroup
	for ci, c := range clients {
		for w := 0; w < cfg.workers; w++ {
			wg.Add(1)
			go func(c *transport.Client, seed int64) {
				defer wg.Done()
				closedLoop(ctx, c, cfg, o, &done, &errs, seed)
			}(c, int64(ci*cfg.workers+w))
		}
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	close(stop)
	sampler.Wait()
	if err := <-killErr; err != nil {
		return failoverResult{}, fmt.Errorf("kill head: %w", err)
	}

	sn := reg.Snapshot()
	e2e := sn.Stage(obs.StageAcquireE2E)
	batchHist := sn.Stage(obs.StageEgressBatch)
	res := failoverResult{
		result: result{
			Ops:       done.Load(),
			Errors:    errs.Load(),
			Seconds:   elapsed,
			MRPS:      float64(done.Load()) / elapsed / 1e6,
			P50Us:     float64(e2e.Percentile(0.50)) / 1e3,
			P99Us:     float64(e2e.Percentile(0.99)) / 1e3,
			FramesOut: sn.Counter(obs.CtrFramesOut),
			AvgBatch:  batchHist.Mean(),
		},
		KillAtS:    killAt.Seconds(),
		BucketMs:   bucket.Seconds() * 1e3,
		EpochAfter: tp.Controller().Epoch(),
		RecoveryMs: -1,
	}
	if res.Ops == 0 {
		return res, fmt.Errorf("no operations completed (%d errors)", res.Errors)
	}
	if killBucket < 1 || killBucket >= len(buckets) {
		return res, fmt.Errorf("run too short for kill at bucket %d of %d", killBucket, len(buckets))
	}
	// Skip the first bucket (warmup) for the pre-kill mean.
	pre := buckets[1:killBucket]
	var preSum uint64
	for _, b := range pre {
		preSum += b
	}
	preMean := float64(preSum) / float64(len(pre))
	res.PreKillMRPS = preMean / bucket.Seconds() / 1e6

	post := buckets[killBucket:]
	minPost := post[0]
	var postSum uint64
	for i, b := range post {
		postSum += b
		if b < minPost {
			minPost = b
		}
		if res.RecoveryMs < 0 && preMean > 0 && float64(b) >= 0.8*preMean {
			res.RecoveryMs = float64(i+1) * bucket.Seconds() * 1e3
		}
	}
	res.PostKillMRPS = float64(postSum) / float64(len(post)) / bucket.Seconds() / 1e6
	if preMean > 0 {
		res.DipFrac = float64(minPost) / preMean
	}
	return res, nil
}
