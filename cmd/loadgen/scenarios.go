package main

import (
	"encoding/json"
	"fmt"
	"os"

	"netlock/internal/scenario"
)

// runScenarios executes named adversarial scenarios from the
// internal/scenario registry and writes the figure-style summaries as a
// JSON array (the BENCH_scenarios.json artifact). Each scenario
// self-validates its trace with internal/check; any violation aborts the
// run with a -netlock.seed replay fragment in the error.
func runScenarios(workload, plane string, seed int64, short bool, path string) error {
	var scs []scenario.Scenario
	if workload == "all" {
		scs = scenario.All()
	} else {
		sc, ok := scenario.ByName(workload)
		if !ok {
			names := ""
			for _, s := range scenario.All() {
				names += " " + s.Name
			}
			return fmt.Errorf("unknown -workload %q (have: all%s)", workload, names)
		}
		scs = []scenario.Scenario{sc}
	}

	var planes []struct {
		kind  string
		chaos bool
	}
	switch plane {
	case "embedded":
		planes = append(planes, struct {
			kind  string
			chaos bool
		}{"embedded", false})
	case "udp":
		planes = append(planes, struct {
			kind  string
			chaos bool
		}{"udp", true})
	case "both", "":
		planes = append(planes, struct {
			kind  string
			chaos bool
		}{"embedded", false}, struct {
			kind  string
			chaos bool
		}{"udp", true})
	default:
		return fmt.Errorf("unknown -plane %q (embedded, udp, both)", plane)
	}

	var sums []*scenario.Summary
	for _, sc := range scs {
		for _, pl := range planes {
			cfg := scenario.Config{Seed: seed, Plane: pl.kind, Chaos: pl.chaos, Short: short}
			sum, err := sc.Run(cfg)
			if err != nil {
				return fmt.Errorf("scenario %s/%s: %w", sc.Name, pl.kind, err)
			}
			fmt.Println(sum)
			sums = append(sums, sum)
		}
	}

	data, err := json.MarshalIndent(sums, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("loadgen: wrote %d scenario summaries to %s\n", len(sums), path)
	return nil
}
