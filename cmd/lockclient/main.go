// Command lockclient drives load against a NetLock switch over UDP and
// reports throughput and latency, mirroring the paper's DPDK client (§5).
//
//	lockclient -switch 127.0.0.1:9000 -locks 1024 -mode exclusive \
//	           -concurrency 32 -duration 5s
//
// Against a replicated rack, list every chain member head first and the
// client re-targets on epoch announcements when the head fails:
//
//	lockclient -switch 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"netlock"
	"netlock/internal/stats"
	"netlock/internal/transport"
)

func main() {
	swAddr := flag.String("switch", "127.0.0.1:9000", "switch UDP address(es), comma-separated chain members head first")
	locks := flag.Uint("locks", 1024, "lock ID space (1..N)")
	modeStr := flag.String("mode", "exclusive", "lock mode: shared|exclusive")
	concurrency := flag.Int("concurrency", 32, "concurrent workers")
	duration := flag.Duration("duration", 5*time.Second, "run duration")
	think := flag.Duration("think", 0, "hold time per lock")
	timeout := flag.Duration("timeout", 2*time.Second, "per-acquire timeout")
	tenant := flag.Uint("tenant", 0, "tenant ID stamped on every acquire")
	batch := flag.Int("batch", 0, "client MaxBatch: 0 = full batch frames, 1 = one datagram per op")
	flush := flag.Duration("flush", 0, "client batch flush interval (0: transport default)")
	flag.Parse()

	mode := netlock.Exclusive
	if *modeStr == "shared" {
		mode = netlock.Shared
	}

	var wg sync.WaitGroup
	var grants, timeouts, rejects atomic.Int64
	var mu sync.Mutex
	var lat stats.Histogram
	stop := time.Now().Add(*duration)

	var announced atomic.Uint64
	for w := 0; w < *concurrency; w++ {
		c, err := transport.NewClientConfig(transport.ClientConfig{
			Switches:      strings.Split(*swAddr, ","),
			MaxBatch:      *batch,
			FlushInterval: *flush,
			OnFailover: func(epoch uint64, head string) {
				// Every worker's client sees the announcement; log each
				// epoch once.
				if old := announced.Load(); epoch > old && announced.CompareAndSwap(old, epoch) {
					log.Printf("lockclient: chain epoch %d, head now %s", epoch, head)
				}
			},
		})
		if err != nil {
			log.Fatalf("client: %v", err)
		}
		defer c.Close()
		wg.Add(1)
		go func(c *transport.Client, seed uint32) {
			defer wg.Done()
			id := seed
			for time.Now().Before(stop) {
				id = id*1664525 + 1013904223 // LCG walk over the lock space
				lock := id%uint32(*locks) + 1
				t0 := time.Now()
				ctx, cancel := context.WithTimeout(context.Background(), *timeout)
				g, err := c.Acquire(ctx, lock, mode, netlock.WithTenant(uint8(*tenant)))
				cancel()
				if err != nil {
					switch {
					case errors.Is(err, netlock.ErrQueueOverflow),
						errors.Is(err, netlock.ErrQuotaExceeded):
						rejects.Add(1)
					default:
						timeouts.Add(1)
					}
					continue
				}
				d := time.Since(t0)
				mu.Lock()
				lat.Record(d.Nanoseconds())
				mu.Unlock()
				grants.Add(1)
				if *think > 0 {
					time.Sleep(*think)
				}
				g.Release()
			}
		}(c, uint32(w)+1)
	}
	wg.Wait()

	secs := duration.Seconds()
	mu.Lock()
	sum := lat.Summarize()
	mu.Unlock()
	fmt.Printf("grants: %d (%.0f locks/s), timeouts: %d, rejects: %d\n",
		grants.Load(), float64(grants.Load())/secs, timeouts.Load(), rejects.Load())
	fmt.Printf("latency: %v\n", sum)
}
