// Quickstart: acquire and release shared and exclusive locks against an
// embedded NetLock instance, and watch the memory-management loop move a
// hot lock into the switch data plane.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"netlock"
)

func main() {
	lm := netlock.New(netlock.Config{
		Servers:      2,
		DefaultLease: 500 * time.Millisecond,
	})
	defer lm.Close()
	ctx := context.Background()

	// Exclusive lock: one holder at a time.
	g, err := lm.Acquire(ctx, 42, netlock.Exclusive)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("acquired lock %d (%s), lease expires at +%v\n", g.LockID(), g.Mode(), g.Expiry)
	g.Release()

	// Shared locks: many concurrent holders.
	var readers []*netlock.Grant
	for i := 0; i < 5; i++ {
		r, err := lm.Acquire(ctx, 42, netlock.Shared)
		if err != nil {
			log.Fatal(err)
		}
		readers = append(readers, r)
	}
	fmt.Printf("%d concurrent shared holders of lock 42\n", len(readers))

	// An exclusive request queues behind them (FCFS) and is granted when
	// the last reader releases.
	done := make(chan struct{})
	go func() {
		defer close(done)
		w, err := lm.Acquire(ctx, 42, netlock.Exclusive)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("writer granted after all readers released")
		w.Release()
	}()
	time.Sleep(50 * time.Millisecond)
	for _, r := range readers {
		r.Release()
	}
	<-done

	// New locks start at the lock servers (§4.3). Generate some traffic,
	// run a placement round, and the hot lock moves into the switch.
	for i := 0; i < 100; i++ {
		g, err := lm.Acquire(ctx, 7, netlock.Exclusive)
		if err != nil {
			log.Fatal(err)
		}
		g.Release()
	}
	installed, _ := lm.PlacementTick(time.Second)
	st := lm.Stats()
	fmt.Printf("placement moved %d locks into the switch (%d resident)\n",
		installed, st.SwitchResidentLocks)

	g2, err := lm.Acquire(ctx, 7, netlock.Exclusive)
	if err != nil {
		log.Fatal(err)
	}
	g2.Release()
	fmt.Printf("switch grants so far: %d (lock 7 is now switch-processed)\n",
		lm.Stats().Switch.GrantsImmediate)
}
