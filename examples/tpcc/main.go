// TPC-C-style transaction locking over the NetLock public API: workers run
// the standard transaction mix (New-Order, Payment, ...), each acquiring
// its lock set in the global order, while the placement loop migrates hot
// warehouse and district locks into the switch.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"netlock"
)

const (
	warehouses = 4
	districts  = 10
)

// spin busy-waits, modeling in-memory transaction execution without the
// millisecond-scale granularity of time.Sleep.
func spin(d time.Duration) {
	for t0 := time.Now(); time.Since(t0) < d; {
	}
}

// lockID encodes (table, key) like internal/tpcc.
func lockID(table, key uint32) uint32 { return table<<28 | key }

type lockReq struct {
	id   uint32
	mode netlock.Mode
}

// paymentTxn locks warehouse (X), district (X), customer (X).
func paymentTxn(rng *rand.Rand) []lockReq {
	w := uint32(rng.Intn(warehouses))
	d := w*districts + uint32(rng.Intn(districts))
	c := d*3000 + uint32(rng.Intn(3000))
	return []lockReq{
		{lockID(3, c), netlock.Exclusive},
		{lockID(2, d), netlock.Exclusive},
		{lockID(1, w), netlock.Exclusive},
	}
}

// newOrderTxn locks warehouse (S), district (X), and a few stock pages (X).
func newOrderTxn(rng *rand.Rand) []lockReq {
	w := uint32(rng.Intn(warehouses))
	d := w*districts + uint32(rng.Intn(districts))
	reqs := []lockReq{
		{lockID(2, d), netlock.Exclusive},
		{lockID(1, w), netlock.Shared},
	}
	// Deduplicate the page set: acquiring the same exclusive lock twice in
	// one transaction would self-deadlock.
	pages := map[uint32]bool{}
	for len(pages) < 5 {
		pages[lockID(5, w*100+uint32(rng.Intn(100)))] = true
	}
	for id := range pages {
		reqs = append(reqs, lockReq{id, netlock.Exclusive})
	}
	// Hot-last global order: acquire cold tables first (higher table IDs),
	// the contended warehouse last.
	sort.Slice(reqs, func(i, j int) bool { return reqs[i].id > reqs[j].id })
	return reqs
}

func main() {
	lm := netlock.New(netlock.Config{
		Servers:           2,
		DefaultLease:      time.Second,
		PlacementInterval: 100 * time.Millisecond,
	})
	defer lm.Close()

	const workers = 8
	const runFor = 2 * time.Second
	var committed atomic.Int64
	var wg sync.WaitGroup
	stop := time.Now().Add(runFor)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			ctx := context.Background()
			for time.Now().Before(stop) {
				var reqs []lockReq
				if rng.Intn(100) < 49 {
					reqs = newOrderTxn(rng)
				} else {
					reqs = paymentTxn(rng)
				}
				var grants []*netlock.Grant
				ok := true
				for _, r := range reqs {
					g, err := lm.Acquire(ctx, r.id, r.mode)
					if err != nil {
						ok = false
						break
					}
					grants = append(grants, g)
				}
				// "Execute" the transaction (in-memory work; an OS sleep would
				// inflate hold times by the timer granularity), then release
				// in reverse order.
				if ok {
					spin(2 * time.Microsecond)
					committed.Add(1)
				}
				for i := len(grants) - 1; i >= 0; i-- {
					grants[i].Release()
				}
			}
		}(int64(w) + 1)
	}
	wg.Wait()

	st := lm.Stats()
	fmt.Printf("committed %d transactions in %v (%.0f TPS)\n",
		committed.Load(), runFor, float64(committed.Load())/runFor.Seconds())
	switchGrants := st.Switch.GrantsImmediate + st.Switch.GrantsQueued
	var serverGrants uint64
	for _, s := range st.Servers {
		serverGrants += s.GrantsImmediate + s.GrantsQueued
	}
	fmt.Printf("lock grants: %d by the switch, %d by lock servers (%d locks resident)\n",
		switchGrants, serverGrants, st.SwitchResidentLocks)
	if switchGrants == 0 {
		log.Fatal("expected the placement loop to move hot locks into the switch")
	}
}
