// UDP rack: a NetLock switch chain and two lock servers on loopback
// sockets, driven by concurrent clients — the deployment shape of the
// paper's prototype (§5), in miniature, built through the ctrlplane
// Topology API.
//
// The control plane (ctrlplane.New) installs a hot lock in the switch and
// leaves the rest to the servers; clients observe identical semantics on
// both paths.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"netlock"
	"netlock/internal/ctrlplane"
	"netlock/internal/switchdp"
	"netlock/internal/transport"
)

func main() {
	// Two lock servers behind one ToR lock switch, with leases for crash
	// recovery; lock 1 is hot — SwitchLocks installs it in the data plane
	// (and releases ownership at its partition server, the §4.3 move).
	tp, err := ctrlplane.New(ctrlplane.Config{
		Switches: 1,
		Servers:  2,
		DataPlane: switchdp.Config{
			MaxLocks:       1024,
			TotalSlots:     10_000,
			Priorities:     1,
			DefaultLeaseNs: int64(500 * time.Millisecond),
		},
		SwitchLocks: []ctrlplane.SwitchLock{{ID: 1, Slots: 64}},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer tp.Close()
	var srvAddrs []string
	for _, srv := range tp.Servers() {
		srvAddrs = append(srvAddrs, srv.Addr())
	}
	fmt.Printf("switch on %s, lock servers on %v\n", tp.Head().Addr(), srvAddrs)

	// Clients hammer the hot lock (switch path) and a cold lock (server
	// path) concurrently. Each acquire carries a per-call deadline through
	// its context.
	var wg sync.WaitGroup
	var hot, cold atomic.Int64
	deadline := time.Now().Add(time.Second)
	for w := 0; w < 4; w++ {
		c, err := tp.NewClient(transport.ClientConfig{})
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(c *transport.Client, w int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				g, err := c.Acquire(ctx, 1, netlock.Exclusive)
				cancel()
				if err != nil {
					log.Fatal(err)
				}
				hot.Add(1)
				g.Release()
				ctx, cancel = context.WithTimeout(context.Background(), 2*time.Second)
				g2, err := c.Acquire(ctx, uint32(100+w), netlock.Shared)
				cancel()
				if err != nil {
					log.Fatal(err)
				}
				cold.Add(1)
				g2.Release()
			}
		}(c, w)
	}
	wg.Wait()

	snap := tp.Head().Snapshot()
	st := snap.Stats
	fmt.Printf("hot lock (switch path): %d acquisitions, %d switch grants\n",
		hot.Load(), st.GrantsImmediate+st.GrantsQueued)
	fmt.Printf("cold locks (server path): %d acquisitions, %d forwards\n",
		cold.Load(), st.Forwards)
	if st.GrantsImmediate+st.GrantsQueued == 0 || st.Forwards == 0 {
		log.Fatal("expected both switch-path and server-path traffic")
	}
}
