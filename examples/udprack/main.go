// UDP rack: a NetLock switch and two lock servers on loopback sockets,
// driven by concurrent clients — the deployment shape of the paper's
// prototype (§5), in miniature.
//
// The control plane (this program) installs a hot lock in the switch and
// leaves the rest to the servers; clients observe identical semantics on
// both paths.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"netlock"
	"netlock/internal/lockserver"
	"netlock/internal/switchdp"
	"netlock/internal/transport"
)

func main() {
	// Two lock servers.
	var servers []*transport.Server
	var addrs []string
	for i := 0; i < 2; i++ {
		srv, err := transport.NewServer(transport.ServerConfig{Listen: "127.0.0.1:0"})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		servers = append(servers, srv)
		addrs = append(addrs, srv.Addr())
	}
	// The ToR lock switch, with leases for crash recovery.
	sw, err := transport.NewSwitch(transport.SwitchConfig{
		Listen: "127.0.0.1:0",
		DataPlane: switchdp.Config{
			MaxLocks:       1024,
			TotalSlots:     10_000,
			Priorities:     1,
			DefaultLeaseNs: int64(500 * time.Millisecond),
		},
		Servers: addrs,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sw.Close()
	for _, srv := range servers {
		srv.SetSwitchAddr(sw.Addr())
	}
	fmt.Printf("switch on %s, lock servers on %v\n", sw.Addr(), addrs)

	// Control plane: lock 1 is hot — install it in the switch (and release
	// ownership at its partition server, the §4.3 move).
	sw.WithDataPlane(func(dp *switchdp.Switch) {
		err = dp.CtrlInstallLock(1, []switchdp.Region{{Left: 0, Right: 64}})
	})
	if err != nil {
		log.Fatal(err)
	}
	home := servers[lockserver.RSSCore(1, len(servers))]
	if err := home.LockServer().CtrlReleaseOwnership(1); err != nil {
		log.Fatal(err)
	}

	// Clients hammer the hot lock (switch path) and a cold lock (server
	// path) concurrently. Each acquire carries a per-call deadline through
	// its context.
	var wg sync.WaitGroup
	var hot, cold atomic.Int64
	deadline := time.Now().Add(time.Second)
	for w := 0; w < 4; w++ {
		c, err := transport.NewClient(sw.Addr())
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		wg.Add(1)
		go func(c *transport.Client, w int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				g, err := c.Acquire(ctx, 1, netlock.Exclusive)
				cancel()
				if err != nil {
					log.Fatal(err)
				}
				hot.Add(1)
				g.Release()
				ctx, cancel = context.WithTimeout(context.Background(), 2*time.Second)
				g2, err := c.Acquire(ctx, uint32(100+w), netlock.Shared)
				cancel()
				if err != nil {
					log.Fatal(err)
				}
				cold.Add(1)
				g2.Release()
			}
		}(c, w)
	}
	wg.Wait()

	snap := sw.Snapshot()
	st := snap.Stats
	fmt.Printf("hot lock (switch path): %d acquisitions, %d switch grants\n",
		hot.Load(), st.GrantsImmediate+st.GrantsQueued)
	fmt.Printf("cold locks (server path): %d acquisitions, %d forwards\n",
		cold.Load(), st.Forwards)
	if st.GrantsImmediate+st.GrantsQueued == 0 || st.Forwards == 0 {
		log.Fatal("expected both switch-path and server-path traffic")
	}
}
