// Multitenant policies: service differentiation with priorities and
// performance isolation with per-tenant quotas (paper §4.4, Figure 12).
//
// Two tenants share one NetLock instance. Tenant 0 is high-priority; its
// requests jump ahead of tenant 1's waiting exclusive requests. Then quotas
// cap each tenant's request rate regardless of how fast it submits.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"netlock"
)

func main() {
	lm := netlock.New(netlock.Config{
		Servers:      1,
		Priorities:   2,
		Isolation:    true,
		DefaultLease: time.Second,
	})
	defer lm.Close()
	ctx := context.Background()

	// Quotas: both tenants get the same request budget even though tenant
	// 1 will submit far more aggressively.
	lm.SetTenantQuota(0, 2000, 64)
	lm.SetTenantQuota(1, 2000, 64)

	// --- Service differentiation ---
	// A low-priority holder, then a low-priority waiter, then a
	// high-priority waiter: on release, the high-priority request wins.
	hold, err := lm.Acquire(ctx, 100, netlock.Exclusive, netlock.WithTenant(1), netlock.WithPriority(1))
	if err != nil {
		log.Fatal(err)
	}
	var order []string
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := func(name string, prio uint8, tenant uint8) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g, err := lm.Acquire(ctx, 100, netlock.Exclusive,
				netlock.WithTenant(tenant), netlock.WithPriority(prio))
			if err != nil {
				log.Fatal(err)
			}
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			g.Release()
		}()
		time.Sleep(20 * time.Millisecond) // deterministic arrival order
	}
	start("low-priority waiter", 1, 1)
	start("high-priority waiter", 0, 0)
	hold.Release()
	wg.Wait()
	fmt.Printf("grant order under differentiation: %v\n", order)
	if order[0] != "high-priority waiter" {
		log.Fatal("priority policy violated")
	}

	// --- Performance isolation ---
	// Tenant 1 submits 4x more workers than tenant 0; the quota equalizes
	// their admitted request rates.
	var admitted [2]atomic.Int64
	var rejected [2]atomic.Int64
	deadline := time.Now().Add(500 * time.Millisecond)
	var iwg sync.WaitGroup
	worker := func(tenant uint8, lock uint32) {
		defer iwg.Done()
		for time.Now().Before(deadline) {
			g, err := lm.Acquire(ctx, lock, netlock.Shared, netlock.WithTenant(tenant))
			if errors.Is(err, netlock.ErrQuotaExceeded) {
				rejected[tenant].Add(1)
				time.Sleep(2 * time.Millisecond)
				continue
			}
			if err != nil {
				log.Fatal(err)
			}
			admitted[tenant].Add(1)
			g.Release()
		}
	}
	for w := 0; w < 2; w++ {
		iwg.Add(1)
		go worker(0, uint32(200+w))
	}
	for w := 0; w < 8; w++ {
		iwg.Add(1)
		go worker(1, uint32(300+w))
	}
	iwg.Wait()
	fmt.Printf("tenant 0: %d admitted, %d rejected\n", admitted[0].Load(), rejected[0].Load())
	fmt.Printf("tenant 1: %d admitted, %d rejected (4x the workers, same share)\n",
		admitted[1].Load(), rejected[1].Load())
	ratio := float64(admitted[1].Load()) / float64(admitted[0].Load()+1)
	if ratio > 2.5 {
		log.Fatalf("isolation failed: tenant1/tenant0 admitted ratio %.1f", ratio)
	}
	fmt.Printf("admitted ratio tenant1/tenant0 = %.2f (quota holds both to the same share)\n", ratio)
}
