// Failover: switch failure and reactivation with lease-based recovery
// (paper §4.5 and §6.5, Figure 15).
//
// A hot lock lives in the switch. A client "crashes" while holding it, the
// switch itself fails and restarts empty, and the system recovers: the
// control plane reinstalls the lock table, and the lease sweep reclaims the
// stale grant so new clients make progress.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"netlock"
)

func main() {
	lm := netlock.New(netlock.Config{
		Servers:       1,
		DefaultLease:  100 * time.Millisecond,
		SweepInterval: 10 * time.Millisecond,
	})
	defer lm.Close()
	ctx := context.Background()

	// Make lock 1 hot and switch-resident.
	for i := 0; i < 50; i++ {
		g, err := lm.Acquire(ctx, 1, netlock.Exclusive)
		if err != nil {
			log.Fatal(err)
		}
		g.Release()
	}
	lm.PlacementTick(time.Second)
	fmt.Printf("lock 1 resident in switch: %d locks resident\n", lm.Stats().SwitchResidentLocks)

	// A client acquires... and crashes without releasing.
	if _, err := lm.Acquire(ctx, 1, netlock.Exclusive); err != nil {
		log.Fatal(err)
	}
	fmt.Println("holder crashed without releasing")

	// The lease sweep reclaims the lock for the next client.
	t0 := time.Now()
	cctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	g, err := lm.Acquire(cctx, 1, netlock.Exclusive)
	if err != nil {
		log.Fatalf("lease recovery failed: %v", err)
	}
	fmt.Printf("lease expired; next client granted after %v\n", time.Since(t0).Round(time.Millisecond))
	g.Release()

	// Now the switch itself fails: all register state is lost.
	lm.FailSwitch()
	fmt.Printf("switch failed (failed=%v): data-plane state gone\n", lm.SwitchFailed())

	// Reactivate: the control plane reinstalls the lock table with empty
	// queues; clients simply retry their requests.
	lm.RestartSwitch()
	g2, err := lm.Acquire(ctx, 1, netlock.Exclusive)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("switch reactivated; new acquisition granted against the rebuilt table")
	g2.Release()

	st := lm.Stats()
	fmt.Printf("expired releases swept: %d\n", st.Switch.ExpiredReleases)
}
